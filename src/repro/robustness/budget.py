"""Execution budgets: bounded work with graceful degradation.

A :class:`Budget` is an immutable *spec* — limits on engine steps, edge
relaxations, and wall-clock time.  Starting it yields a stateful
:class:`BudgetMeter` that the engine charges as it runs; a single meter
can be shared across several engine runs (the batch solvers do this) so
that one budget covers a whole batch.

Exhaustion is not an error.  The engine stops at the next step boundary
and reports the partial state: the policy's running upper bound μ is
still a valid bound on the true distance (it only ever reflects real
paths), so callers get ``exact=False`` plus the best answer found in the
time allotted instead of an exception.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Budget", "BudgetMeter", "BudgetReport"]


@dataclass(frozen=True)
class Budget:
    """Resource limits for one or more engine runs.

    Any subset of the limits may be set; ``None`` means unlimited.

    Parameters
    ----------
    max_steps : int or None
        Maximum engine steps (rounds of Alg. 2) across the metered runs.
    max_relaxations : int or None
        Maximum edge relaxations across the metered runs.
    wall_time : float or None
        Wall-clock limit in seconds, measured from :meth:`start`.
    clock : callable or None
        The time source ``wall_time`` is measured against: a
        zero-argument callable returning seconds, or an object with a
        ``now()`` method (a :class:`~repro.robustness.clock.SimClock`).
        ``None`` — the default — means real time (``time.monotonic``);
        deadline tests pass a simulated clock so wall-time exhaustion
        is deterministic.
    """

    max_steps: int | None = None
    max_relaxations: int | None = None
    wall_time: float | None = None
    clock: object | None = None

    def __post_init__(self) -> None:
        for name in ("max_steps", "max_relaxations", "wall_time"):
            v = getattr(self, name)
            if v is not None and v < 0:
                raise ValueError(f"{name} must be nonnegative, got {v}")

    @property
    def unlimited(self) -> bool:
        return self.max_steps is None and self.max_relaxations is None and self.wall_time is None

    def start(self) -> "BudgetMeter":
        """Begin metering against this budget (starts the wall clock)."""
        return BudgetMeter(self)


@dataclass
class BudgetReport:
    """What a metered run (or run sequence) actually consumed."""

    exhausted: bool
    reason: str | None
    steps: int
    relaxations: int
    elapsed: float
    budget: Budget

    def to_dict(self) -> dict:
        """JSON-friendly rendering (used by the CLI)."""
        return {
            "exhausted": self.exhausted,
            "reason": self.reason,
            "steps": self.steps,
            "relaxations": self.relaxations,
            "elapsed_seconds": round(self.elapsed, 6),
            "limits": {
                "max_steps": self.budget.max_steps,
                "max_relaxations": self.budget.max_relaxations,
                "wall_time": self.budget.wall_time,
            },
        }


@dataclass
class BudgetMeter:
    """Stateful consumption tracker for one :class:`Budget`.

    The engine calls :meth:`check` at each step boundary and
    :meth:`charge` after the step's work is known, so a budget may
    overshoot by at most one step's relaxations — bounded slop in
    exchange for never interrupting a half-applied ``write_min`` batch.
    """

    budget: Budget
    steps: int = 0
    relaxations: int = 0
    reason: str | None = field(default=None)
    _t0: float = field(default=0.0)

    def __post_init__(self) -> None:
        from .clock import as_clock

        self._now = as_clock(self.budget.clock)
        self._t0 = self._now()

    def charge(self, *, steps: int = 0, relaxations: int = 0) -> None:
        self.steps += steps
        self.relaxations += relaxations

    @property
    def elapsed(self) -> float:
        return self._now() - self._t0

    @property
    def exhausted(self) -> bool:
        return self.check() is not None

    def check(self) -> str | None:
        """The exhaustion reason, or ``None`` while within budget.

        Sticky: once a limit trips, later calls keep reporting it even
        if counters were somehow reduced.
        """
        if self.reason is not None:
            return self.reason
        b = self.budget
        if b.max_steps is not None and self.steps >= b.max_steps:
            self.reason = f"max_steps={b.max_steps} reached"
        elif b.max_relaxations is not None and self.relaxations >= b.max_relaxations:
            self.reason = f"max_relaxations={b.max_relaxations} reached"
        elif b.wall_time is not None and self.elapsed >= b.wall_time:
            self.reason = f"wall_time={b.wall_time}s reached"
        return self.reason

    def report(self) -> BudgetReport:
        reason = self.check()
        return BudgetReport(
            exhausted=reason is not None,
            reason=reason,
            steps=self.steps,
            relaxations=self.relaxations,
            elapsed=self.elapsed,
            budget=self.budget,
        )
