"""Checked mode: runtime enforcement of the paper's correctness invariants.

The PPSP framework's correctness rests on a handful of delicate
invariants — μ is a monotone non-increasing upper bound witnessed by real
paths, ``write_min`` never increases a tentative distance, the BiDS
``δ[v] ≥ μ/2`` rule (Thm. 3.3) only ever prunes elements the policy
endorses, and A*/BiD-A* heuristics must stay admissible/consistent
(Thm. 3.4).  :class:`InvariantAuditor` hooks into the engine's step loop
and verifies all of them after every step, raising a structured
:class:`InvariantViolation` the moment one breaks.

Checked mode costs an ``O(k·n)`` snapshot per step and is meant for
tests, debugging, and canary traffic — not the hot path.  The chaos
suite (``tests/robustness/test_chaos.py``) proves each check actually
fires by injecting the corresponding corruption with
:class:`~repro.robustness.faults.FaultInjector`.
"""

from __future__ import annotations

import numpy as np

from ..core.policies import AStar, BiDAStar, BiDS, EarlyTermination

__all__ = ["InvariantAuditor", "InvariantViolation"]


class InvariantViolation(RuntimeError):
    """A framework invariant broke at runtime.

    Attributes
    ----------
    kind : str
        Machine-readable violation class: ``dist-increase``,
        ``mu-increase``, ``mu-unwitnessed``, ``frontier-drop``,
        ``unsafe-prune``, ``heuristic-endpoint``,
        ``heuristic-inconsistent``.
    step : int
        Engine step at which the violation was detected (-1 = at bind).
    details : dict
        Violation-specific evidence (indices, expected/actual values).
    """

    def __init__(self, kind: str, step: int, message: str, details: dict | None = None) -> None:
        super().__init__(f"[{kind}] step {step}: {message}")
        self.kind = kind
        self.step = step
        self.details = details or {}


class InvariantAuditor:
    """Per-step invariant checker plugged into the engine (checked mode).

    Parameters
    ----------
    sample_edges : int
        Edges sampled per step for the heuristic-consistency check
        (``h(u) <= w(u, v) + h(v)``) on A*/BiD-A* runs.
    tolerance : float
        Absolute slack for all floating-point comparisons.
    seed : int
        Seed for the edge-sampling RNG (audits are deterministic).
    """

    def __init__(self, *, sample_edges: int = 32, tolerance: float = 1e-9, seed: int = 0) -> None:
        self.sample_edges = int(sample_edges)
        self.tolerance = float(tolerance)
        self._rng = np.random.default_rng(seed)
        self._snapshot: np.ndarray | None = None
        self._mu = np.inf
        self._policy = None
        self._graph = None
        self._n = 0
        #: number of completed per-step audits (observability/testing).
        self.steps_audited = 0

    # ------------------------------------------------------------------
    def start(self, policy, graph, dist: np.ndarray) -> None:
        """Bind-time checks and initial snapshot (engine calls once)."""
        self._policy = policy
        self._graph = graph
        self._n = graph.num_vertices
        self._snapshot = dist.copy()
        self._mu = np.inf
        self.steps_audited = 0
        self._check_heuristic_endpoints(policy)

    def after_step(
        self,
        step: int,
        dist: np.ndarray,
        policy,
        *,
        frontier_ids: np.ndarray,
        deferred: np.ndarray,
        changed_kept: np.ndarray,
        processed: np.ndarray,
        pruned: np.ndarray,
    ) -> None:
        """Verify every invariant over the step that just completed."""
        tol = self.tolerance
        snap = self._snapshot

        # 1. write_min semantics: tentative distances never increase.
        increased = np.flatnonzero(dist > snap + tol)
        if len(increased):
            e = int(increased[0])
            raise InvariantViolation(
                "dist-increase",
                step,
                f"dist[{e}] rose {snap[e]:.6g} -> {dist[e]:.6g} "
                "(write_min must be monotone non-increasing)",
                {"element": e, "before": float(snap[e]), "after": float(dist[e]),
                 "count": int(len(increased))},
            )

        # 2. μ is monotone non-increasing ...  (single-query policies only:
        # MultiPPSP's traced bound is a max over queries and may rise as
        # new queries first become finite.)
        mu = float(policy.trace_mu())
        if isinstance(policy, (EarlyTermination, AStar, BiDS, BiDAStar)) and not np.isnan(mu):
            if mu > self._mu + tol:
                raise InvariantViolation(
                    "mu-increase",
                    step,
                    f"mu rose {self._mu:.6g} -> {mu:.6g}",
                    {"before": self._mu, "after": mu},
                )
            # ... and witnessed: μ must match a bound recomputable from
            # the distance table (a real path), never undercut it.
            witness = self._witness_bound(policy, dist)
            if witness is not None and mu < witness - tol:
                raise InvariantViolation(
                    "mu-unwitnessed",
                    step,
                    f"mu={mu:.6g} undercuts the best witnessed bound {witness:.6g} "
                    "(no path of that length exists in the distance table)",
                    {"mu": mu, "witness": float(witness)},
                )
            self._mu = min(self._mu, mu)

        # 3. Frontier conservation: after the extract/defer/prune/add
        # cycle the frontier must hold exactly deferred ∪ changed_kept —
        # anything else means elements were lost (or invented).
        expected = np.union1d(deferred, changed_kept)
        if len(frontier_ids) != len(expected) or not np.array_equal(frontier_ids, expected):
            lost = np.setdiff1d(expected, frontier_ids)
            extra = np.setdiff1d(frontier_ids, expected)
            raise InvariantViolation(
                "frontier-drop",
                step,
                f"frontier lost {len(lost)} and gained {len(extra)} unexpected elements",
                {"lost": lost[:16].tolist(), "extra": extra[:16].tolist()},
            )

        # 4. Prune safety: the policy must endorse every prune under the
        # *current* state (Thm. 3.3 / Table 2 predicates re-evaluated).
        if len(pruned):
            endorsed = policy.prune_mask(pruned, dist)
            bad = pruned[~endorsed]
            if len(bad):
                e = int(bad[0])
                raise InvariantViolation(
                    "unsafe-prune",
                    step,
                    f"element {e} (dist={dist[e]:.6g}) was pruned but the policy "
                    "no longer endorses it",
                    {"element": e, "dist": float(dist[e]), "count": int(len(bad))},
                )

        # 5. Heuristic consistency sampling over this step's extractions.
        self._check_heuristic_consistency(step, policy, processed)

        self._snapshot = dist.copy()
        self.steps_audited += 1

    # ------------------------------------------------------------------
    def _witness_bound(self, policy, dist: np.ndarray) -> float | None:
        """Best s-t bound recomputable from the distance table, or None."""
        n = self._n
        if isinstance(policy, (BiDS, BiDAStar)):
            total = dist[:n] + dist[n:2 * n]
            return float(total.min()) if np.isfinite(total).any() else np.inf
        if isinstance(policy, (EarlyTermination, AStar)):
            return float(dist[policy.t])
        return None

    def _heuristics_of(self, policy) -> list:
        if isinstance(policy, AStar) and policy.heuristic is not None:
            return [policy.heuristic]
        if isinstance(policy, BiDAStar):
            return [h for h in (policy.h_s, policy.h_t) if h is not None]
        return []

    def _check_heuristic_endpoints(self, policy) -> None:
        """Admissibility at the anchors: h_t(t) and h_s(s) must be 0."""
        checks = []
        if isinstance(policy, AStar) and policy.heuristic is not None:
            checks.append(("h(target)", policy.heuristic, policy.t))
        if isinstance(policy, BiDAStar):
            if policy.h_s is not None:
                checks.append(("h_s(source)", policy.h_s, policy.s))
            if policy.h_t is not None:
                checks.append(("h_t(target)", policy.h_t, policy.t))
        for label, h, v in checks:
            val = float(h(np.array([v]))[0])
            if abs(val) > self.tolerance:
                raise InvariantViolation(
                    "heuristic-endpoint",
                    -1,
                    f"{label} = {val:.6g}, expected 0 (inadmissible heuristic)",
                    {"vertex": int(v), "value": val},
                )

    def _check_heuristic_consistency(self, step: int, policy, processed: np.ndarray) -> None:
        """Sampled triangle-inequality check h(u) <= w(u,v) + h(v).

        Consistency (plus h = 0 at the anchor) implies admissibility, and
        it is locally checkable — one edge at a time — which makes it the
        right spot check for a running search.  Directed graphs only
        check the target-anchored heuristic (consistent over forward
        edges); undirected graphs check every heuristic the policy uses.
        """
        heuristics = self._heuristics_of(policy)
        if not heuristics or self.sample_edges <= 0 or len(processed) == 0:
            return
        graph = self._graph
        if graph.directed and isinstance(policy, BiDAStar):
            heuristics = [policy.h_t] if policy.h_t is not None else []
        verts = np.unique(processed % self._n)
        starts = graph.indptr[verts]
        counts = graph.indptr[verts + 1] - starts
        has = counts > 0
        if not has.any():
            return
        # Sample one out-edge per extracted vertex, then cap the batch.
        verts, starts, counts = verts[has], starts[has], counts[has]
        offs = starts + (self._rng.random(len(verts)) * counts).astype(np.int64)
        if len(offs) > self.sample_edges:
            pick = self._rng.choice(len(offs), size=self.sample_edges, replace=False)
            verts, offs = verts[pick], offs[pick]
        nbrs = graph.indices[offs].astype(np.int64)
        ws = graph.weights[offs]
        for h in heuristics:
            hu = h(verts)
            hv = h(nbrs)
            slack = hu - ws - hv
            bad = np.flatnonzero(slack > self.tolerance)
            if len(bad):
                i = int(bad[0])
                raise InvariantViolation(
                    "heuristic-inconsistent",
                    step,
                    f"h({int(verts[i])})={hu[i]:.6g} > w={ws[i]:.6g} + "
                    f"h({int(nbrs[i])})={hv[i]:.6g} (violates consistency)",
                    {"u": int(verts[i]), "v": int(nbrs[i]),
                     "h_u": float(hu[i]), "h_v": float(hv[i]), "w": float(ws[i])},
                )
