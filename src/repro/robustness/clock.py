"""Simulated time: the deterministic clock behind chaos-testable deadlines.

Wall-clock limits (``Budget.wall_time``), per-query deadlines, and
circuit-breaker cooldowns all compare "now" against a recorded instant.
In production "now" is ``time.monotonic``; in tests it must be a value
the test *controls*, or every deadline scenario becomes a sleep-and-hope
race.  A :class:`SimClock` is that controllable now: it only moves when
something calls :meth:`advance` — e.g. the :class:`~repro.robustness.
faults.FaultInjector` ``stall`` fault, which models per-step latency by
advancing simulated time instead of sleeping.

Everything that takes a clock accepts either a zero-argument callable
returning seconds (``time.monotonic`` itself) or an object with a
``now()`` method; ``SimClock`` is both (it is callable).
"""

from __future__ import annotations

import time

__all__ = ["SimClock", "as_clock"]


class SimClock:
    """A monotonic clock that advances only on request.

    >>> clock = SimClock()
    >>> clock.now()
    0.0
    >>> clock.advance(2.5)
    >>> clock()          # callable, usable wherever time.monotonic is
    2.5
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance a monotonic clock by {seconds}")
        self._now += float(seconds)

    def __call__(self) -> float:
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(now={self._now})"


def as_clock(clock) -> "callable":
    """Normalize a clock argument to a zero-argument ``now`` callable.

    ``None`` means real time (``time.monotonic``); objects exposing
    ``now()`` (a :class:`SimClock`) are adapted; plain callables pass
    through.
    """
    if clock is None:
        return time.monotonic
    now = getattr(clock, "now", None)
    if now is not None and callable(now):
        return now
    if callable(clock):
        return clock
    raise TypeError(f"clock must be callable or have a now() method, got {clock!r}")
