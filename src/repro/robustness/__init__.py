"""Resilient query execution: budgets, checked mode, fault injection.

The production-hardening layer over the PPSP engine:

* :mod:`~repro.robustness.budget` — bounded work with graceful
  degradation (``exact=False`` answers instead of crashes);
* :mod:`~repro.robustness.auditor` — checked mode: runtime enforcement
  of the paper's correctness invariants (Thm. 3.3/3.4);
* :mod:`~repro.robustness.faults` — deterministic fault injection for
  chaos tests;
* :mod:`~repro.robustness.clock` — simulated time, so deadlines and
  breaker cooldowns are chaos-testable without sleeping;
* :mod:`~repro.robustness.resilient` — the ``bidastar → bids → et →
  dijkstra-reference`` fallback chain with retries and backoff.
"""

from .auditor import InvariantAuditor, InvariantViolation
from .budget import Budget, BudgetMeter, BudgetReport
from .clock import SimClock
from .faults import FaultInjector, InjectedFault
from .resilient import DEFAULT_CHAIN, AttemptReport, ResilientAnswer, resilient_ppsp

__all__ = [
    "Budget",
    "SimClock",
    "BudgetMeter",
    "BudgetReport",
    "InvariantAuditor",
    "InvariantViolation",
    "FaultInjector",
    "InjectedFault",
    "resilient_ppsp",
    "ResilientAnswer",
    "AttemptReport",
    "DEFAULT_CHAIN",
]
