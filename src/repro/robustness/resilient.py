"""Resilient query execution: fallback chains with budgets and retries.

:func:`resilient_ppsp` answers a point-to-point query the way a
production service must: it tries the fastest algorithm first and walks
down a chain of progressively simpler, harder-to-break rungs —

    ``bidastar → bids → et → dijkstra-reference``

Each engine rung runs under its own (fresh) budget and, when checked
mode is on, under an :class:`~repro.robustness.auditor.InvariantAuditor`.
Transient failures (exceptions carrying ``transient=True``, e.g. an
:class:`~repro.robustness.faults.InjectedFault` from chaos tests) are
retried on the same rung with seeded decorrelated-jitter backoff
(:func:`~repro.serve.overload.next_backoff` — delays spread out instead
of doubling in lockstep, and an injectable RNG/sleep keeps tests
deterministic), optionally gated by a shared
:class:`~repro.serve.overload.RetryBudget` so a fleet of failing
queries cannot mount a retry storm; permanent failures —
an :class:`~repro.robustness.auditor.InvariantViolation`, a missing
heuristic, any policy error — skip straight to the next rung.  The final
rung is the sequential textbook Dijkstra oracle, which shares no code
with the engine and therefore survives anything that breaks it.

The returned :class:`ResilientAnswer` records which rung answered and
every attempt made on the way, so operators can see *how* an answer was
produced, not just what it was.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..api import PPSPAnswer, ppsp, validate_query
from ..baselines.dijkstra import dijkstra_ppsp

__all__ = ["resilient_ppsp", "ResilientAnswer", "AttemptReport", "DEFAULT_CHAIN"]

DEFAULT_CHAIN = ("bidastar", "bids", "et")

#: the chain's terminal rung — engine-free, exact, unconditionally trusted.
REFERENCE_RUNG = "dijkstra-reference"


@dataclass
class AttemptReport:
    """One try of one rung: what ran and how it ended."""

    method: str
    attempt: int
    outcome: str  # "ok" | "inexact" | "error"
    error: str | None = None
    transient: bool = False


@dataclass
class ResilientAnswer:
    """Outcome of a fallback-chain query.

    ``method`` is the rung that produced ``distance``; ``attempts`` is
    the full chronological trail, including failed rungs.  ``exact`` is
    False only when every rung was budget-limited and the best running
    upper bound μ is all we have.
    """

    source: int
    target: int
    distance: float
    exact: bool
    method: str
    attempts: list[AttemptReport] = field(default_factory=list)
    answer: PPSPAnswer | None = None

    @property
    def reachable(self) -> bool:
        return bool(np.isfinite(self.distance))

    def path(self) -> list[int]:
        """Shortest path when an engine rung answered (see PPSPAnswer.path)."""
        if self.answer is not None:
            return self.answer.path()
        raise NotImplementedError(
            f"rung {self.method!r} does not retain path state; "
            "re-run ppsp() with an engine method for a path"
        )


def resilient_ppsp(
    graph,
    source: int,
    target: int,
    *,
    methods: tuple[str, ...] = DEFAULT_CHAIN,
    budget=None,
    retries: int = 1,
    backoff: float = 0.0,
    backoff_cap: float | None = None,
    rng=None,
    sleep=None,
    retry_budget=None,
    checked: bool = False,
    reference_fallback: bool = True,
    fault_injector=None,
    observer=None,
    breakers=None,
    **kwargs,
) -> ResilientAnswer:
    """Answer one query through the fallback chain.

    Parameters
    ----------
    methods : tuple of str
        Engine rungs, tried in order (default BiD-A* → BiDS → ET).
    budget : Budget or None
        Per-attempt budget; each attempt gets a fresh meter.  A
        budget-exhausted rung contributes its upper bound and the chain
        moves on.
    retries : int
        Extra tries per rung for *transient* failures.
    backoff : float
        Base sleep (seconds) between transient retries.  Each delay is
        drawn with decorrelated jitter — ``min(cap, uniform(backoff,
        3 x previous))`` — so concurrent retriers spread out instead of
        synchronizing into waves.  Zero (the default) retries
        immediately — tests stay fast.
    backoff_cap : float or None
        Ceiling on one jittered delay; defaults to ``16 x backoff``.
    rng : None | int | numpy.random.Generator
        Seed/generator for the jitter draws; pass a seed for
        deterministic delays in tests.
    sleep : callable or None
        Injectable sleep (default :func:`time.sleep`); tests pass a
        recorder so no real time is spent.
    retry_budget : repro.serve.overload.RetryBudget or None
        Shared token bucket gating retries (one token each).  A denied
        acquisition skips the remaining tries on the rung and moves
        down the chain — under overload, degrading beats amplifying.
    checked : bool
        Run every engine rung under a fresh :class:`InvariantAuditor`.
    reference_fallback : bool
        Finish with sequential Dijkstra when no engine rung answered
        exactly (guaranteed-exact terminal rung).
    fault_injector : FaultInjector or None
        Passed through to the engine (chaos testing).
    observer : repro.obs.Observer or None
        Threaded into every engine rung, and notified of each attempt
        via ``on_fallback(method, attempt, outcome)`` — including the
        terminal Dijkstra rung.
    breakers : repro.serve.BreakerBoard or None
        Per-rung circuit breakers.  An open rung is skipped outright
        (recorded as an ``"open"`` attempt with no engine work); every
        admitted attempt reports its success or failure back, so a rung
        that keeps failing trips open across *queries* and traffic
        routes straight to the next rung until its half-open probe
        succeeds.  Budget-exhausted rungs count as failures — a rung
        that cannot answer inside its budget is overloaded.  The
        terminal Dijkstra rung is never gated: it is the answer of last
        resort.

    Remaining keyword arguments flow to :func:`repro.api.ppsp`.
    """
    validate_query(graph, source, target)
    attempts: list[AttemptReport] = []
    best_bound = np.inf
    best_answer: PPSPAnswer | None = None
    best_method: str | None = None
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    if sleep is None:
        sleep = time.sleep
    if backoff_cap is None:
        backoff_cap = 16.0 * backoff
    prev_delay = backoff

    def note(report: AttemptReport) -> None:
        attempts.append(report)
        if observer is not None:
            observer.on_fallback(report.method, report.attempt, report.outcome)

    for method in methods:
        if breakers is not None and not breakers.allow(method):
            # Tripped open: route to the next rung without paying the
            # failure latency again (attempt 0 = no engine work done).
            note(AttemptReport(method=method, attempt=0, outcome="open"))
            continue
        for attempt in range(1, retries + 2):
            try:
                ans = ppsp(
                    graph,
                    source,
                    target,
                    method=method,
                    budget=budget,
                    checked=checked,
                    fault_injector=fault_injector,
                    observer=observer,
                    **kwargs,
                )
            except Exception as err:  # noqa: BLE001 — each rung must be contained
                if breakers is not None:
                    breakers.record_failure(method)
                transient = bool(getattr(err, "transient", False))
                note(AttemptReport(
                    method=method,
                    attempt=attempt,
                    outcome="error",
                    error=f"{type(err).__name__}: {err}",
                    transient=transient,
                ))
                if transient and attempt <= retries:
                    if retry_budget is not None and not retry_budget.try_acquire(
                        kind="retry"
                    ):
                        break  # bucket dry: degrade to the next rung
                    if backoff > 0:
                        from ..serve.overload import next_backoff

                        prev_delay = next_backoff(
                            prev_delay, base=backoff, cap=backoff_cap, rng=rng
                        )
                        sleep(prev_delay)
                    continue
                break  # permanent (or retries spent): next rung
            if ans.exact:
                if breakers is not None:
                    breakers.record_success(method)
                note(AttemptReport(method=method, attempt=attempt, outcome="ok"))
                return ResilientAnswer(
                    source=int(source),
                    target=int(target),
                    distance=ans.distance,
                    exact=True,
                    method=method,
                    attempts=attempts,
                    answer=ans,
                )
            # Budget-exhausted: keep the bound, move down the chain.
            if breakers is not None:
                breakers.record_failure(method)
            note(AttemptReport(method=method, attempt=attempt, outcome="inexact"))
            if ans.distance < best_bound:
                best_bound, best_answer, best_method = ans.distance, ans, method
            break

    if reference_fallback:
        distance = dijkstra_ppsp(graph, int(source), int(target))
        note(AttemptReport(method=REFERENCE_RUNG, attempt=1, outcome="ok"))
        return ResilientAnswer(
            source=int(source),
            target=int(target),
            distance=distance,
            exact=True,
            method=REFERENCE_RUNG,
            attempts=attempts,
        )
    return ResilientAnswer(
        source=int(source),
        target=int(target),
        distance=float(best_bound),
        exact=False,
        method=best_method or "none",
        attempts=attempts,
        answer=best_answer,
    )
