"""Command-line interface: queries and graph tooling without Python code.

Subcommands (``python -m repro <cmd>`` or the installed ``repro-query``
entry point):

* ``query``    — one PPSP query on a saved graph;
* ``batch``    — a batch of queries (pairs on the command line or a file);
* ``serve-batch`` — the fault-tolerant batch pipeline: durable
  checkpoints with ``--resume``, per-query deadlines, per-method
  circuit breakers, priority-based load shedding, and ``--verify``
  (certificate-check every answer, repair refuted ones; ``--chaos-*``
  flags inject seeded bit-flip corruption to exercise it);
* ``serve``    — the always-on streaming service: queries arrive one
  per line (stdin or ``--pairs-file``), the micro-batcher coalesces
  them over a persistent warm worker pool, and one JSON answer per
  query is emitted in submission order;
* ``verify``   — one certified query: emit its certificate and run the
  independent checker on it;
* ``trace``    — a query's full per-step engine trace (table or JSON);
* ``bench``    — the benchmark-regression harness (emits ``BENCH_<i>.json``);
* ``generate`` — build a suite-style synthetic graph and save it;
* ``info``     — Tab.-3-style statistics of a saved graph, plus a probe
  query reporting the run's work/depth and μ-settlement;
* ``stats``    — run the seeded observability workload and print the
  metrics snapshot (Prometheus text or schema-checked JSON).

Graphs are read/written in the formats of :mod:`repro.graphs.io`
(``.npz`` preferred; ``.gr`` DIMACS and plain edge lists accepted).
"""

from __future__ import annotations

import argparse
import json
import sys

from . import batch_ppsp, ppsp
from .core.query_graph import PATTERNS
from .graphs import io as graph_io
from .graphs import knn_graph, road_graph, social_graph, web_graph
from .graphs.connectivity import approximate_diameter, largest_component
from .graphs.knn import clustered_points, skewed_points, uniform_points

__all__ = ["main"]


def _load_graph(path: str):
    if path.endswith(".npz"):
        return graph_io.load_npz(path)
    if path.endswith(".gr"):
        return graph_io.read_dimacs(path)
    return graph_io.read_edge_list(path)


def _parse_budget(spec: str | None):
    """Parse ``--budget`` specs like ``steps=500,relaxations=1e6,wall=2.5``."""
    if not spec:
        return None
    from .robustness.budget import Budget

    keys = {"steps": "max_steps", "relaxations": "max_relaxations", "wall": "wall_time"}
    kwargs = {}
    for part in spec.split(","):
        if not part.strip():
            continue
        try:
            key, value = part.split("=", 1)
        except ValueError:
            raise SystemExit(f"bad --budget item {part!r}; expected key=value") from None
        key = key.strip()
        if key not in keys:
            raise SystemExit(f"unknown --budget key {key!r}; options: {sorted(keys)}")
        field = keys[key]
        try:
            kwargs[field] = float(value) if field == "wall_time" else int(float(value))
        except ValueError:
            raise SystemExit(f"bad --budget value {value!r} for {key}; expected a number") from None
    try:
        return Budget(**kwargs)
    except ValueError as err:
        raise SystemExit(f"bad --budget: {err}") from None


def _cmd_query(args) -> int:
    graph = _load_graph(args.graph)
    if args.backend == "process":
        # A single point-to-point query routed through the process-pool
        # batch backend (one-pair plain-bids batch).  Serial-only
        # features are engine-local and cannot ship to a worker.
        for flag in ("trace", "verbose", "resilient", "checked"):
            if getattr(args, flag):
                raise SystemExit(f"--{flag} is serial-only; drop --backend process")
        if args.budget:
            raise SystemExit("--budget is serial-only; drop --backend process")
        from .core.batch import solve_batch

        kernel_kw = {"kernel": args.kernel} if args.kernel else {}
        res = solve_batch(
            graph, [(args.source, args.target)], method="plain-bids",
            backend="process", workers=args.workers, **kernel_kw,
        )
        dist = res.distances[(args.source, args.target)]
        payload = {
            "source": args.source,
            "target": args.target,
            "method": "plain-bids",
            "backend": "process",
            "distance": dist,
            "exact": res.exact,
            "reachable": dist != float("inf"),
        }
        print(json.dumps(payload, indent=2))
        return 0
    trace = None
    if args.trace or args.verbose:
        from .core.tracing import StepTrace

        trace = StepTrace()
    budget = _parse_budget(args.budget)
    if args.resilient:
        from .robustness.resilient import resilient_ppsp

        kernel_kw = {"kernel": args.kernel} if args.kernel else {}
        res = resilient_ppsp(
            graph, args.source, args.target, budget=budget,
            checked=args.checked, **kernel_kw,
        )
        payload = {
            "source": res.source,
            "target": res.target,
            "method": res.method,
            "distance": res.distance,
            "exact": res.exact,
            "reachable": res.reachable,
            "attempts": [
                {"method": a.method, "attempt": a.attempt, "outcome": a.outcome,
                 **({"error": a.error} if a.error else {})}
                for a in res.attempts
            ],
        }
        print(json.dumps(payload, indent=2))
        return 0
    kernel_kw = {"kernel": args.kernel} if args.kernel else {}
    ans = ppsp(
        graph, args.source, args.target, method=args.method,
        budget=budget, checked=args.checked, trace=trace, **kernel_kw,
    )
    payload = {
        "source": ans.source,
        "target": ans.target,
        "method": ans.method,
        "distance": ans.distance,
        "exact": ans.exact,
        "reachable": ans.reachable,
        "steps": ans.run.steps,
        "relaxations": ans.run.relaxations,
    }
    if args.verbose:
        # Costs of the run just executed (work/depth in the paper's
        # cost model; mu-settlement from the attached trace).
        settled = trace.mu_settled_step()
        payload["work"] = float(ans.run.meter.work)
        payload["depth"] = float(ans.run.meter.depth)
        payload["mu_settled_step"] = None if settled is None else int(settled)
    if ans.budget_report is not None:
        payload["budget"] = ans.budget_report.to_dict()
    if args.path and ans.reachable:
        payload["path"] = ans.path()
    if args.trace:
        payload["trace_summary"] = trace.summary()
    print(json.dumps(payload, indent=2))
    if args.trace:
        print(trace.render(), file=sys.stderr)
    return 0


def _cmd_trace(args) -> int:
    """Run one query with a :class:`StepTrace` and export it."""
    from .core.tracing import StepTrace

    graph = _load_graph(args.graph)
    trace = StepTrace()
    ans = ppsp(graph, args.source, args.target, method=args.method, trace=trace)
    if args.json:
        payload = json.loads(trace.to_json())
        payload["query"] = {
            "source": ans.source,
            "target": ans.target,
            "method": ans.method,
            "distance": ans.distance,
            "reachable": ans.reachable,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(trace.render(max_rows=args.max_rows))
        print(json.dumps({"distance": ans.distance, **trace.summary()}), file=sys.stderr)
    return 0


def _cmd_bench(args) -> int:
    """Run the seeded regression workload and gate against the baseline."""
    from .perf.regression import bench_command

    payload, rc = bench_command(
        scale=args.scale,
        output=args.output,
        baseline=args.baseline,
        directory=args.dir,
        work_tolerance=args.work_tolerance,
        wall_tolerance=args.wall_tolerance,
        check=args.check,
        backend=args.backend,
        kernel=args.kernel,
    )
    print(json.dumps(
        {
            "output": payload["output_file"],
            "gates": payload["gates"],
            "comparison": payload["comparison"],
        },
        indent=2,
    ))
    return rc


def _cmd_batch(args) -> int:
    graph = _load_graph(args.graph)
    if args.pairs_file:
        with open(args.pairs_file) as fh:
            pairs = [tuple(int(x) for x in line.split()[:2]) for line in fh if line.strip()]
    else:
        raw = [int(x) for x in args.pairs]
        if len(raw) % 2:
            raise SystemExit("need an even number of vertex ids")
        pairs = list(zip(raw[0::2], raw[1::2]))
    kwargs = {}
    budget = _parse_budget(args.budget)
    if budget is not None:
        kwargs["budget"] = budget
    if args.checked:
        from .robustness.auditor import InvariantAuditor

        kwargs["auditor"] = InvariantAuditor()
    if args.backend != "serial":
        kwargs["backend"] = args.backend
        if args.workers is not None:
            kwargs["workers"] = args.workers
    if args.kernel:
        kwargs["kernel"] = args.kernel
    res = batch_ppsp(graph, pairs, method=args.method, **kwargs)
    payload = {
        "method": res.method,
        "num_searches": res.num_searches,
        "exact": res.exact,
        "distances": {f"{s}->{t}": d for (s, t), d in sorted(res.distances.items())},
    }
    report = res.details.get("budget_report")
    if report is not None:
        payload["budget"] = report.to_dict()
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_verify(args) -> int:
    """One certified query plus an independent certificate check."""
    from .verify import CertificateChecker

    graph = _load_graph(args.graph)
    ans = ppsp(graph, args.source, args.target, method=args.method,
               budget=_parse_budget(args.budget), certify=True)
    cert = ans.certificate
    report = CertificateChecker(tolerance=args.tolerance).check(
        graph, cert, expected_distance=ans.distance
    )
    payload = {
        "source": ans.source,
        "target": ans.target,
        "method": ans.method,
        "distance": ans.distance,
        "exact": ans.exact,
        "certificate": {
            "kind": cert.kind,
            "path_length": None if cert.path is None else len(cert.path),
            "facts": len(cert.facts),
            "mu": cert.mu,
            "heuristic_bound": cert.heuristic_bound,
            "graph_fingerprint": cert.graph_fingerprint,
        },
        "check": {
            "valid": report.valid,
            "proven": report.proven,
            "checks": report.checks,
            "failures": report.failures,
        },
    }
    print(json.dumps(payload, indent=2))
    if args.cert_out:
        with open(args.cert_out, "w") as fh:
            fh.write(cert.to_json(indent=2))
            fh.write("\n")
        print(f"wrote certificate to {args.cert_out}", file=sys.stderr)
    return 0 if report.valid else 1


def _serve_chaos_injector(args):
    """Build the seeded FaultInjector the --chaos-* flags describe."""
    if not (args.chaos_flip_dist or args.chaos_flip_checkpoint):
        return None
    from .robustness import FaultInjector

    return FaultInjector(
        seed=args.chaos_seed,
        flip_dist_at=2 if args.chaos_flip_dist else None,
        flip_dist_count=args.chaos_flip_dist or 1,
        flip_checkpoint=bool(args.chaos_flip_checkpoint),
        max_fires=args.chaos_fires,
    )


def _serve_hedging_kwargs(args):
    """shard_deadline / hedge / retry_budget kwargs from the CLI flags."""
    kwargs = {}
    if args.shard_deadline is not None:
        kwargs["shard_deadline"] = args.shard_deadline
    if args.hedge:
        from .serve import HedgePolicy

        kwargs["hedge"] = HedgePolicy(factor=args.hedge_factor)
    if args.retry_budget is not None:
        from .serve import RetryBudget

        kwargs["retry_budget"] = RetryBudget(capacity=args.retry_budget)
    return kwargs


def _cmd_serve_batch(args) -> int:
    """The fault-tolerant batch pipeline (checkpoints, deadlines, breakers)."""
    from .serve import ServePipeline

    graph = _load_graph(args.graph)
    if args.pairs_file:
        # 's t' or 's t priority' per line; priority defaults to 0.
        queries = []
        with open(args.pairs_file) as fh:
            for line in fh:
                parts = line.split()
                if not parts:
                    continue
                if len(parts) not in (2, 3):
                    raise SystemExit(
                        f"bad pairs line {line.strip()!r}; expected 's t [priority]'"
                    )
                queries.append(tuple(int(x) for x in parts))
    else:
        raw = [int(x) for x in args.pairs]
        if len(raw) % 2:
            raise SystemExit("need an even number of vertex ids")
        queries = list(zip(raw[0::2], raw[1::2]))
    if not queries:
        raise SystemExit("no queries given (inline pairs or --pairs-file)")

    pipeline = ServePipeline(
        graph,
        method=args.method,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        deadline_ms=args.deadline_ms,
        max_queue=args.max_queue,
        budget=_parse_budget(args.budget),
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        verify=args.verify,
        fault_injector=_serve_chaos_injector(args),
        backend=args.backend,
        workers=args.workers,
        **_serve_hedging_kwargs(args),
    )
    res = pipeline.run(queries, resume=args.resume)
    payload = {
        "method": res.method,
        "counts": res.counts(),
        "checkpoints_written": res.checkpoints_written,
        "resumed_queries": res.resumed_queries,
        "breakers": res.breaker_states,
        "shed": [f"{s}->{t}" for s, t in res.shed],
        "results": {
            f"{s}->{t}": {
                "distance": res.distances[(s, t)],
                "exact": res.exact[(s, t)],
                "outcome": res.outcomes[(s, t)],
            }
            for (s, t) in sorted(res.distances)
        },
    }
    if args.checkpoint:
        payload["checkpoint"] = args.checkpoint
    if args.verify:
        payload["verification"] = res.details.get("verification", {})
    print(json.dumps(payload, indent=2))
    # Shed/timed-out queries are a degraded (but explicit) service level,
    # not a failure; only a query with no answer at all is one.
    return 1 if "failed" in res.counts() else 0


def _cmd_serve(args) -> int:
    """The streaming query service: stdin/file lines -> JSONL answers.

    Input lines are ``s t [priority]``; answers are emitted in
    submission order as soon as their coalesced batch resolves, so a
    trickle of queries still streams (bounded by ``--max-wait-ms``).
    A run summary (stats + batch log) goes to stderr on shutdown.
    """
    from .serve import QueryService

    graph = _load_graph(args.graph)
    source = open(args.pairs_file) if args.pairs_file else sys.stdin
    observer = None
    if args.stats_out:
        from .obs import Observer

        observer = Observer()
    futures = []
    emitted = 0

    def emit_ready(block: bool) -> None:
        nonlocal emitted
        while emitted < len(futures):
            fut = futures[emitted]
            if not block and not fut.done():
                return
            res = fut.result()
            print(json.dumps({
                "source": res.source,
                "target": res.target,
                "distance": res.distance,
                "exact": res.exact,
                "outcome": res.outcome,
                "batch": res.batch_index,
            }), flush=True)
            emitted += 1

    service = QueryService(
        graph,
        method=args.method,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        backend=args.backend,
        workers=args.workers,
        deadline_ms=args.deadline_ms,
        max_queue=args.max_queue,
        observer=observer,
        overload=False if args.no_overload else None,
        codel_target_ms=args.codel_target_ms,
        codel_interval_ms=args.codel_interval_ms,
        shed_multiple=args.shed_multiple,
        degrade_budget_ms=args.degrade_budget_ms,
        **_serve_hedging_kwargs(args),
    )
    try:
        with service as svc:
            svc.start()
            for line in source:
                parts = line.split()
                if not parts:
                    continue
                if len(parts) not in (2, 3):
                    raise SystemExit(
                        f"bad query line {line.strip()!r}; expected 's t [priority]'"
                    )
                s, t = int(parts[0]), int(parts[1])
                priority = int(parts[2]) if len(parts) == 3 else 0
                futures.append(svc.submit(s, t, priority=priority))
                emit_ready(block=False)
        # close() flushed the tail; resolve and emit everything left.
        emit_ready(block=True)
        stats = service.stats()
        print(json.dumps({
            "stats": stats,
            "batches": [
                {"index": b.index, "reason": b.reason, "size": b.size}
                for b in service.batches
            ],
        }, indent=2), file=sys.stderr)
        if args.stats_out:
            with open(args.stats_out, "w") as fh:
                fh.write(observer.export_text())
    finally:
        if args.pairs_file:
            source.close()
    return 1 if any(f.result().outcome == "failed" for f in futures) else 0


def _cmd_generate(args) -> int:
    if args.kind == "social":
        g = social_graph(args.n, seed=args.seed)
    elif args.kind == "web":
        g = web_graph(args.n, seed=args.seed)
    elif args.kind == "road":
        side = max(int(args.n ** 0.5), 2)
        g = road_graph(side, side, seed=args.seed)
    elif args.kind == "knn-uniform":
        g = knn_graph(uniform_points(args.n, 2, seed=args.seed), k=5)
    elif args.kind == "knn-clustered":
        g = knn_graph(clustered_points(args.n, 2, seed=args.seed), k=5)
    else:
        g = knn_graph(skewed_points(args.n, 2, seed=args.seed), k=5)
    g.name = args.kind
    graph_io.save_npz(args.output, g)
    print(f"wrote {g!r} to {args.output}")
    return 0


def _cmd_info(args) -> int:
    from .graphs.validate import validate_graph

    # Diagnostic load: corrupt files must still be inspectable, so npz
    # graphs skip construction-time validation here and let
    # validate_graph report every problem instead.
    if args.graph.endswith(".npz"):
        g = graph_io.load_npz(args.graph, validate=False)
    else:
        g = _load_graph(args.graph)
    lcc = largest_component(g)
    problems = validate_graph(g)
    payload = {
        "name": g.name,
        "directed": g.directed,
        "n": g.num_vertices,
        "m": g.num_edges,
        "coord_system": g.coord_system,
        "diameter_estimate": approximate_diameter(g),
        "lcc_percent": round(100.0 * len(lcc) / max(g.num_vertices, 1), 2),
        "problems": problems,
    }
    if not problems and len(lcc) >= 2:
        # One BiDS probe across the largest component: reports the
        # work/depth and mu-settlement of the run just executed, so
        # "how hard is a query on this graph" ships with the stats.
        from .core.tracing import StepTrace

        s, t = int(lcc[0]), int(lcc[-1])
        trace = StepTrace()
        ans = ppsp(g, s, t, method="bids", trace=trace)
        settled = trace.mu_settled_step()
        payload["probe"] = {
            "source": s,
            "target": t,
            "method": "bids",
            "distance": ans.distance if ans.reachable else None,
            "work": float(ans.run.meter.work),
            "depth": float(ans.run.meter.depth),
            "steps": ans.run.steps,
            "mu_settled_step": None if settled is None else int(settled),
        }
    print(json.dumps(payload, indent=2))
    return 0 if not problems else 1


def _cmd_stats(args) -> int:
    """Run the seeded observability workload, print the snapshot."""
    from .obs.exposition import validate_snapshot
    from .obs.workload import stats_workload

    graph = _load_graph(args.graph) if args.graph else None
    obs = stats_workload(graph, num_pairs=args.pairs, seed=args.seed)
    if args.format == "text":
        out = obs.export_text()
    else:
        payload = obs.export_json(include_spans=not args.no_spans)
        validate_snapshot(payload)
        out = json.dumps(payload, indent=2) + "\n"
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(out)
        print(f"wrote {args.format} snapshot to {args.output}")
    else:
        print(out, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    from .kernels.scatter import KERNEL_IMPLS

    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    q = sub.add_parser("query", help="one point-to-point query")
    q.add_argument("--graph", required=True)
    q.add_argument("--source", type=int, required=True)
    q.add_argument("--target", type=int, required=True)
    q.add_argument("--method", default="bids",
                   choices=("sssp", "et", "bids", "astar", "bidastar"))
    q.add_argument("--path", action="store_true", help="include a shortest path")
    q.add_argument("--trace", action="store_true",
                   help="per-step engine trace (summary in JSON, table on stderr)")
    q.add_argument("--budget", metavar="SPEC",
                   help="execution budget, e.g. 'steps=500,relaxations=1e6,wall=2.5'; "
                        "on exhaustion the answer degrades to an upper bound (exact=false)")
    q.add_argument("--checked", action="store_true",
                   help="verify framework invariants every step (slow; raises on violation)")
    q.add_argument("--resilient", action="store_true",
                   help="run the bidastar->bids->et->dijkstra fallback chain "
                        "instead of a single method")
    q.add_argument("--backend", default="serial", choices=("serial", "process"),
                   help="process: route through the multi-process pool "
                        "(one-pair plain-bids batch; serial-only flags rejected)")
    q.add_argument("--kernel", choices=KERNEL_IMPLS,
                   help="relaxation scatter-min implementation "
                        "(default: auto dispatch; REPRO_KERNEL overrides)")
    q.add_argument("--workers", type=int,
                   help="pool size for --backend process (default: cpu count)")
    q.add_argument("--verbose", action="store_true",
                   help="include work/depth and the mu-settlement step of "
                        "the run just executed")
    q.set_defaults(func=_cmd_query)

    b = sub.add_parser("batch", help="a batch of queries")
    b.add_argument("--graph", required=True)
    b.add_argument("--method", default="multi",
                   choices=("multi", "plain-bids", "plain-star-bids", "sssp-plain", "sssp-vc"))
    b.add_argument("--pairs-file", help="file of 's t' lines")
    b.add_argument("--budget", metavar="SPEC",
                   help="batch-wide execution budget (see 'query --budget')")
    b.add_argument("--backend", default="serial", choices=("serial", "process"),
                   help="process: shard the batch across a process pool "
                        "(bit-identical answers; incompatible with --budget)")
    b.add_argument("--kernel", choices=KERNEL_IMPLS,
                   help="relaxation scatter-min implementation "
                        "(default: auto dispatch; REPRO_KERNEL overrides)")
    b.add_argument("--workers", type=int,
                   help="pool size for --backend process (default: cpu count)")
    b.add_argument("--checked", action="store_true",
                   help="verify framework invariants every step (slow)")
    b.add_argument("pairs", nargs="*", help="s1 t1 s2 t2 ...")
    b.set_defaults(func=_cmd_batch)

    sv = sub.add_parser(
        "serve-batch",
        help="fault-tolerant batch pipeline: checkpoint/resume, deadlines, "
             "circuit breakers, load shedding",
    )
    sv.add_argument("--graph", required=True)
    sv.add_argument("--method", default="multi",
                    choices=("multi", "plain-bids", "plain-star-bids",
                             "sssp-plain", "sssp-vc", "resilient"))
    sv.add_argument("--pairs-file", help="file of 's t [priority]' lines")
    sv.add_argument("--checkpoint", metavar="PATH",
                    help="durable checkpoint manifest (a .npz sidecar is "
                         "written next to it); enables --resume")
    sv.add_argument("--checkpoint-every", type=int, default=16,
                    help="queries per shard between checkpoints")
    sv.add_argument("--resume", action="store_true",
                    help="skip queries already answered by the checkpoint "
                         "at --checkpoint (bit-identical to an "
                         "uninterrupted run)")
    sv.add_argument("--deadline-ms", type=float,
                    help="per-query deadline; queries running into it return "
                         "the budgeted upper bound (exact=false), queries "
                         "reaching it while queued time out explicitly")
    sv.add_argument("--max-queue", type=int,
                    help="admission capacity; excess queries are shed "
                         "lowest-priority first with an explicit outcome")
    sv.add_argument("--budget", metavar="SPEC",
                    help="base per-shard execution budget (see 'query --budget')")
    sv.add_argument("--breaker-threshold", type=int, default=3,
                    help="consecutive failures that trip a method's breaker open")
    sv.add_argument("--breaker-cooldown", type=float, default=30.0,
                    help="seconds an open breaker waits before a half-open probe")
    sv.add_argument("--backend", default="serial", choices=("serial", "process"),
                   help="process: solve each shard on a process pool "
                        "(budgeted shards still run serially)")
    sv.add_argument("--workers", type=int,
                   help="pool size for --backend process (default: cpu count)")
    sv.add_argument("--verify", action="store_true",
                    help="certificate-check every answer before it is "
                         "returned; refuted answers are repaired by an "
                         "exact recompute (outcome 'repaired')")
    sv.add_argument("--shard-deadline", type=float, metavar="SECONDS",
                    help="per-shard wall deadline (--backend process): a "
                         "shard past it times out instead of hanging, and "
                         "the suspect worker pool is quarantined and "
                         "respawned")
    sv.add_argument("--hedge", action="store_true",
                    help="hedged re-execution (--backend process): launch a "
                         "backup of a straggling shard once it exceeds "
                         "--hedge-factor x the median shard latency; first "
                         "result wins, answers stay bit-identical")
    sv.add_argument("--hedge-factor", type=float, default=3.0,
                    help="hedge a shard after FACTOR x median shard latency")
    sv.add_argument("--retry-budget", type=float, metavar="TOKENS",
                    help="token-bucket capacity shared by hedges and "
                         "resilient-chain retries (default: unbounded)")
    sv.add_argument("--chaos-flip-dist", type=int, metavar="N",
                    help="inject N seeded bit-flips into tentative "
                         "distances per fault firing (chaos testing)")
    sv.add_argument("--chaos-flip-checkpoint", action="store_true",
                    help="flip one byte of each written checkpoint "
                         "sidecar (chaos testing)")
    sv.add_argument("--chaos-seed", type=int, default=0,
                    help="seed for the chaos fault injector")
    sv.add_argument("--chaos-fires", type=int, default=1,
                    help="total faults the chaos injector may fire")
    sv.add_argument("pairs", nargs="*", help="s1 t1 s2 t2 ...")
    sv.set_defaults(func=_cmd_serve_batch)

    srv = sub.add_parser(
        "serve",
        help="streaming query service: micro-batched execution over a "
             "persistent warm worker pool, one JSON answer per line",
    )
    srv.add_argument("--graph", required=True)
    srv.add_argument("--method", default="multi",
                     choices=("multi", "plain-bids", "plain-star-bids",
                              "sssp-plain", "sssp-vc", "resilient"))
    srv.add_argument("--max-batch", type=int, default=32,
                     help="queries per coalesced batch (flush trigger)")
    srv.add_argument("--max-wait-ms", type=float, default=5.0,
                     help="longest a queued query waits before a partial "
                          "batch flushes")
    srv.add_argument("--backend", default="serial", choices=("serial", "process"),
                     help="process: execute batches on a persistent worker "
                          "pool (workers attach the shared graph once)")
    srv.add_argument("--workers", type=int,
                     help="pool size for --backend process (default: cpu count)")
    srv.add_argument("--deadline-ms", type=float,
                     help="per-query deadline (see 'serve-batch --deadline-ms')")
    srv.add_argument("--max-queue", type=int,
                     help="admission capacity per coalesced batch; excess "
                          "sheds lowest-priority first")
    srv.add_argument("--shard-deadline", type=float, metavar="SECONDS",
                     help="per-shard wall deadline for pool batches "
                          "(see 'serve-batch --shard-deadline')")
    srv.add_argument("--hedge", action="store_true",
                     help="hedged re-execution of straggling shards "
                          "(see 'serve-batch --hedge')")
    srv.add_argument("--hedge-factor", type=float, default=3.0,
                     help="hedge a shard after FACTOR x median shard latency")
    srv.add_argument("--retry-budget", type=float, metavar="TOKENS",
                     help="token-bucket capacity shared by hedges and "
                          "resilient-chain retries (default: unbounded)")
    srv.add_argument("--no-overload", action="store_true",
                     help="disable adaptive overload control (CoDel queue-"
                          "delay shedding + AIMD pressure); static "
                          "pressure only")
    srv.add_argument("--codel-target-ms", type=float, default=100.0,
                     help="queue-sojourn target; sojourn persistently above "
                          "it for a full interval means overloaded")
    srv.add_argument("--codel-interval-ms", type=float, default=1000.0,
                     help="how long sojourn must stay above target before "
                          "the service degrades")
    srv.add_argument("--shed-multiple", type=float, default=8.0,
                     help="shed new queries at the door once the oldest "
                          "queued query has waited MULTIPLE x target")
    srv.add_argument("--degrade-budget-ms", type=float,
                     help="under persistent overload, degrade flushed "
                          "queries to budgeted (exact=false) answers with "
                          "this wall budget instead of queueing further "
                          "(unset: ladder is exact -> shed)")
    srv.add_argument("--pairs-file",
                     help="read 's t [priority]' lines from this file "
                          "instead of stdin")
    srv.add_argument("--stats-out", metavar="PATH",
                     help="write a Prometheus text snapshot (incl. the "
                          "repro_service_* families) here on shutdown")
    srv.set_defaults(func=_cmd_serve)

    v = sub.add_parser(
        "verify",
        help="one certified query: emit the certificate, run the "
             "independent checker on it",
    )
    v.add_argument("--graph", required=True)
    v.add_argument("--source", type=int, required=True)
    v.add_argument("--target", type=int, required=True)
    v.add_argument("--method", default="bids",
                   choices=("sssp", "et", "bids", "astar", "bidastar"))
    v.add_argument("--budget", metavar="SPEC",
                   help="execution budget; a budget-degraded answer gets a "
                        "one-sided upper-bound certificate")
    v.add_argument("--tolerance", type=float, default=1e-6,
                   help="relative tolerance of the checker's comparisons")
    v.add_argument("--cert-out", metavar="PATH",
                   help="also write the certificate JSON here")
    v.set_defaults(func=_cmd_verify)

    t = sub.add_parser("trace", help="full per-step engine trace of one query")
    t.add_argument("--graph", required=True)
    t.add_argument("--source", type=int, required=True)
    t.add_argument("--target", type=int, required=True)
    t.add_argument("--method", default="bids",
                   choices=("sssp", "et", "bids", "astar", "bidastar"))
    t.add_argument("--json", action="store_true",
                   help="machine-readable export (StepTrace.to_json) instead of a table")
    t.add_argument("--max-rows", type=int, default=40,
                   help="table rows before head/tail elision (table mode)")
    t.set_defaults(func=_cmd_trace)

    bench = sub.add_parser(
        "bench", help="benchmark-regression harness (emits BENCH_<i>.json)"
    )
    bench.add_argument("--scale", default="small", choices=("tiny", "small"))
    bench.add_argument("--output", help="snapshot path (default: next BENCH_<i>.json)")
    bench.add_argument("--baseline",
                       help="baseline snapshot to gate against "
                            "(default: highest-numbered BENCH_*.json)")
    bench.add_argument("--dir", default=".", help="directory holding BENCH_*.json")
    bench.add_argument("--work-tolerance", type=float, default=0.10,
                       help="allowed relative increase of deterministic counters")
    bench.add_argument("--wall-tolerance", type=float, default=1.00,
                       help="allowed relative increase of wall-clock numbers")
    bench.add_argument("--backend", default="serial", choices=("serial", "process"),
                       help="process: additionally measure the process-pool "
                             "backend (extra 'pool' section; never gated)")
    bench.add_argument("--kernel", choices=KERNEL_IMPLS,
                       help="pin the scatter-min kernel for the whole workload "
                            "(default: auto dispatch)")
    bench.add_argument("--check", action="store_true",
                       help="exit nonzero when the tolerance gate fails")
    bench.set_defaults(func=_cmd_bench)

    g = sub.add_parser("generate", help="build a synthetic suite-style graph")
    g.add_argument("--kind", required=True,
                   choices=("social", "web", "road", "knn-uniform", "knn-clustered", "knn-skewed"))
    g.add_argument("--n", type=int, default=10_000)
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--output", required=True)
    g.set_defaults(func=_cmd_generate)

    i = sub.add_parser("info", help="statistics of a saved graph")
    i.add_argument("--graph", required=True)
    i.set_defaults(func=_cmd_info)

    s = sub.add_parser(
        "stats",
        help="observability snapshot of the seeded workload "
             "(Prometheus text or JSON)",
    )
    s.add_argument("--graph",
                   help="graph to run the workload on "
                        "(default: the built-in seeded road grid)")
    s.add_argument("--pairs", type=int, default=3,
                   help="query pairs per method (seeded)")
    s.add_argument("--seed", type=int, default=1729,
                   help="seed for pair selection")
    s.add_argument("--format", default="text", choices=("text", "json"))
    s.add_argument("--output", help="write the snapshot here instead of stdout")
    s.add_argument("--no-spans", action="store_true",
                   help="omit per-query span records from the JSON snapshot")
    s.set_defaults(func=_cmd_stats)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
