"""Orionet public API: one-call PPSP and batch queries.

This is the library facade most users need:

>>> from repro import ppsp, batch_ppsp
>>> result = ppsp(graph, s, t, method="bids")
>>> result.distance, result.path()

Methods map to the paper's algorithms: ``sssp`` (no pruning), ``et``
(early termination), ``astar``, ``bids``, ``bidastar``; batch methods
are documented in :mod:`repro.core.batch`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .core.batch import BATCH_METHODS, BatchResult, solve_batch
from .core.engine import RunResult, run_policy
from .core.paths import stitch_bidirectional_path, walk_path
from .core.policies import AStar, BiDAStar, BiDS, EarlyTermination, SsspPolicy
from .core.query_graph import QueryGraph
from .core.stepping import SteppingStrategy

__all__ = ["ppsp", "batch_ppsp", "PPSPAnswer", "PPSP_METHODS", "BATCH_METHODS"]

PPSP_METHODS = ("sssp", "et", "astar", "bids", "bidastar")

_BIDIRECTIONAL = {"bids", "bidastar"}


@dataclass
class PPSPAnswer:
    """Result of one point-to-point query.

    ``distance`` is the exact shortest s-t distance (``inf`` when
    disconnected); ``run`` carries the distance matrix and the work/depth
    meter for performance analysis.
    """

    source: int
    target: int
    distance: float
    method: str
    run: RunResult

    def path(self) -> list[int]:
        """A shortest s-t vertex path (raises PathError if unreachable)."""
        if self.source == self.target:
            return [self.source]
        graph = self.run.graph
        if self.method in _BIDIRECTIONAL:
            return stitch_bidirectional_path(
                graph, self.run.dist[0], self.run.dist[1], self.source, self.target
            )
        return walk_path(graph, self.run.dist[0], self.source, self.target)

    @property
    def reachable(self) -> bool:
        return bool(np.isfinite(self.distance))


def ppsp(
    graph,
    source: int,
    target: int,
    *,
    method: str = "bids",
    strategy: SteppingStrategy | None = None,
    memoize: bool = True,
    heuristic=None,
    heuristic_to_source=None,
    heuristic_to_target=None,
    **engine_kwargs,
) -> PPSPAnswer:
    """Exact shortest s-t distance with the chosen algorithm.

    ``astar``/``bidastar`` need vertex coordinates on the graph (or
    explicit heuristics); all methods accept engine keywords
    (``frontier_mode``, ``pull_relax``).
    """
    if method == "sssp":
        policy = SsspPolicy(source)
    elif method == "et":
        policy = EarlyTermination(source, target)
    elif method == "astar":
        policy = AStar(source, target, heuristic=heuristic, memoize=memoize)
    elif method == "bids":
        policy = BiDS(source, target)
    elif method == "bidastar":
        policy = BiDAStar(
            source,
            target,
            heuristic_to_source=heuristic_to_source,
            heuristic_to_target=heuristic_to_target,
            memoize=memoize,
        )
    else:
        raise ValueError(f"unknown method {method!r}; options: {PPSP_METHODS}")
    run = run_policy(graph, policy, strategy=strategy, **engine_kwargs)
    if method == "sssp":
        distance = float(run.answer[target])
    else:
        distance = float(run.answer)
    return PPSPAnswer(
        source=int(source), target=int(target), distance=distance, method=method, run=run
    )


def batch_ppsp(graph, queries, *, method: str = "multi", **kwargs) -> BatchResult:
    """Answer a batch of (s, t) queries; see :mod:`repro.core.batch`."""
    return solve_batch(graph, queries, method=method, **kwargs)
