"""Orionet public API: one-call PPSP and batch queries.

This is the library facade most users need:

>>> from repro import ppsp, batch_ppsp
>>> result = ppsp(graph, s, t, method="bids")
>>> result.distance, result.path()

Methods map to the paper's algorithms: ``sssp`` (no pruning), ``et``
(early termination), ``astar``, ``bids``, ``bidastar``; batch methods
are documented in :mod:`repro.core.batch`.

For repeated queries against one graph, :func:`warm` returns a
:class:`repro.perf.WarmEngine` — the same algorithms behind pooled
buffers, cached heuristics, and a result cache (see ``docs/perf.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .core.batch import BATCH_METHODS, BatchResult, solve_batch
from .core.engine import RunResult, run_policy
from .core.paths import stitch_bidirectional_path, walk_path
from .core.policies import AStar, BiDAStar, BiDS, EarlyTermination, SsspPolicy
from .core.query_graph import QueryGraph
from .core.stepping import SteppingStrategy

__all__ = [
    "ppsp",
    "batch_ppsp",
    "warm",
    "PPSPAnswer",
    "PPSP_METHODS",
    "BATCH_METHODS",
    "validate_query",
]

PPSP_METHODS = ("sssp", "et", "astar", "bids", "bidastar")

_BIDIRECTIONAL = {"bids", "bidastar"}


def validate_query(graph, source: int, target: int) -> None:
    """Check a query's endpoints against the graph at the API boundary.

    Raises ``ValueError`` naming the offending vertex id instead of
    letting an out-of-range id surface as a cryptic numpy indexing error
    deep inside the engine.
    """
    n = graph.num_vertices
    if n == 0:
        raise ValueError("graph has no vertices; cannot answer queries")
    for name, v in (("source", source), ("target", target)):
        v = int(v)
        if not 0 <= v < n:
            raise ValueError(
                f"{name} vertex {v} out of range for graph "
                f"{graph.name!r} with {n} vertices"
            )


@dataclass
class PPSPAnswer:
    """Result of one point-to-point query.

    ``distance`` is the exact shortest s-t distance (``inf`` when
    disconnected); ``run`` carries the distance matrix and the work/depth
    meter for performance analysis.

    When an execution budget ran out mid-search, ``exact`` is False and
    ``distance`` degrades gracefully to the search's current upper bound
    μ — always ≥ the true distance, and finite as soon as any s-t path
    was seen; ``budget_report`` records which limit tripped.
    """

    source: int
    target: int
    distance: float
    method: str
    run: RunResult
    exact: bool = True
    budget_report: object | None = None
    #: set by ``ppsp(..., certify=True)`` — see :mod:`repro.verify`.
    certificate: object | None = None

    def path(self) -> list[int]:
        """A shortest s-t vertex path (raises PathError if unreachable)."""
        if self.source == self.target:
            return [self.source]
        graph = self.run.graph
        if self.method in _BIDIRECTIONAL:
            return stitch_bidirectional_path(
                graph, self.run.dist[0], self.run.dist[1], self.source, self.target
            )
        return walk_path(graph, self.run.dist[0], self.source, self.target)

    @property
    def reachable(self) -> bool:
        return bool(np.isfinite(self.distance))


def ppsp(
    graph,
    source: int,
    target: int,
    *,
    method: str = "bids",
    strategy: SteppingStrategy | None = None,
    memoize: bool = True,
    heuristic=None,
    heuristic_to_source=None,
    heuristic_to_target=None,
    budget=None,
    checked: bool = False,
    auditor=None,
    certify: bool = False,
    **engine_kwargs,
) -> PPSPAnswer:
    """Exact shortest s-t distance with the chosen algorithm.

    ``astar``/``bidastar`` need vertex coordinates on the graph (or
    explicit heuristics); all methods accept engine keywords
    (``frontier_mode``, ``pull_relax``, ``kernel``).  ``kernel`` picks
    the relaxation scatter-min implementation from
    :mod:`repro.kernels` (``"ufunc_at"``, ``"sort_reduceat"``, or the
    default size-dispatching ``"auto"``); the choice changes speed,
    never answers.

    ``budget`` (a :class:`repro.robustness.Budget`) bounds the search;
    on exhaustion the answer degrades gracefully to the current upper
    bound with ``exact=False``.  ``checked=True`` runs under a fresh
    :class:`repro.robustness.InvariantAuditor` (or pass ``auditor=``),
    raising ``InvariantViolation`` if a framework invariant breaks.
    ``certify=True`` attaches a :class:`repro.verify.Certificate`
    (witness path + lower-bound evidence) to the answer; degraded
    answers get one-sided upper-bound certificates.
    """
    validate_query(graph, source, target)
    if checked and auditor is None:
        from .robustness.auditor import InvariantAuditor  # lazy: avoids cycle

        auditor = InvariantAuditor()
    if method == "sssp":
        policy = SsspPolicy(source)
    elif method == "et":
        policy = EarlyTermination(source, target)
    elif method == "astar":
        policy = AStar(source, target, heuristic=heuristic, memoize=memoize)
    elif method == "bids":
        policy = BiDS(source, target)
    elif method == "bidastar":
        policy = BiDAStar(
            source,
            target,
            heuristic_to_source=heuristic_to_source,
            heuristic_to_target=heuristic_to_target,
            memoize=memoize,
        )
    else:
        raise ValueError(f"unknown method {method!r}; options: {PPSP_METHODS}")
    if certify:
        engine_kwargs.setdefault("track_processed", True)
    run = run_policy(
        graph, policy, strategy=strategy, budget=budget, auditor=auditor, **engine_kwargs
    )
    if method == "sssp":
        distance = float(run.answer[target])
    else:
        distance = float(run.answer)
    exact = not run.exhausted
    certificate = None
    if certify:
        from .verify import certificate_for_run  # lazy: verify imports obs

        certificate = certificate_for_run(
            graph, int(source), int(target), method, distance, exact, run,
            heuristic_bound=_certified_bound(graph, source, target, method, heuristic,
                                             heuristic_to_source, heuristic_to_target),
        )
    return PPSPAnswer(
        source=int(source),
        target=int(target),
        distance=distance,
        method=method,
        run=run,
        exact=exact,
        budget_report=run.budget_report,
        certificate=certificate,
    )


def _certified_bound(
    graph, source, target, method, heuristic, heuristic_to_source, heuristic_to_target
):
    """h(s) for the certificate, or None when it cannot be vouched for.

    Only the *default geometric* heuristic is certifiable — the checker
    recomputes it from coordinates.  User-supplied heuristics may be
    admissible, but the checker has no way to re-derive them, so they
    are left out of the certificate rather than trusted blindly.
    """
    if method not in ("astar", "bidastar") or not graph.has_coords():
        return None
    if heuristic is not None or heuristic_to_source is not None or heuristic_to_target is not None:
        return None
    from .heuristics import make_heuristic  # lazy: optional dependency path

    h = make_heuristic(graph, int(target), memoize=False)
    return float(h(np.asarray([int(source)]))[0])


def batch_ppsp(graph, queries, *, method: str = "multi", **kwargs) -> BatchResult:
    """Answer a batch of (s, t) queries; see :mod:`repro.core.batch`.

    Endpoints are validated up front (``ValueError`` names the first
    offending vertex id); an empty batch returns an empty result.
    Engine keywords ride through to every solver — ``kernel=`` picks
    the scatter-min implementation (pass it as a string impl name when
    combined with ``backend="process"``).
    """
    return solve_batch(graph, queries, method=method, **kwargs)


def warm(graph, **kwargs):
    """A :class:`repro.perf.WarmEngine` bound to ``graph``.

    The warm counterpart of :func:`ppsp`/:func:`batch_ppsp`: identical
    answers, but repeated queries reuse pooled ``(k, n)`` buffers,
    cached heuristic rows, and an LRU result cache.  Keyword arguments
    are forwarded to :class:`~repro.perf.warm.WarmEngine` (cache sizes,
    ``landmarks=``, a shared ``arena=``, a pinned ``kernel=``, ...).
    """
    from .perf.warm import WarmEngine  # lazy: perf imports this module

    return WarmEngine(graph, **kwargs)
