"""ALT landmark heuristics (Goldberg & Harrelson, SODA'05).

The paper positions ALT among the preprocessing-based accelerations
orthogonal to its contribution (Sec. 7).  We include it as an extension
because it composes directly with Orionet's A* and BiD-A* policies and
— unlike geometric heuristics — works on graphs *without coordinates*
(social/web), where the paper's A* rows are blank.

Preprocessing: pick ``k`` landmarks and store exact SSSP distances from
each.  Query: by the triangle inequality,

    h_t(v) = max_L |d(L, t) - d(L, v)|  <=  d(v, t),

a lower bound that is also consistent, so all of Thm. 3.3/3.4 machinery
applies unchanged.  Landmarks are chosen by *farthest-point* selection
(the standard heuristic: spread landmarks toward the periphery) or
uniformly at random.

Only undirected graphs are supported: the symmetric bound above needs
``d(L, v) == d(v, L)``.  Directed ALT needs forward and backward
landmark distances; that variant is out of scope here.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from .geometric import Heuristic, MemoizedHeuristic


def _sssp_distances(graph, source):
    # Imported lazily: policies (core) import heuristics, so a top-level
    # import back into core would be circular.
    from ..core.sssp import sssp_distances

    return sssp_distances(graph, source)

__all__ = ["LandmarkSet", "LandmarkHeuristic", "select_landmarks_farthest"]


class LandmarkSet:
    """Preprocessed landmark distances for ALT queries on one graph.

    Parameters
    ----------
    graph : Graph
        Undirected input graph.
    k : int
        Number of landmarks.  More landmarks = tighter bounds, more
        preprocessing and per-query gather cost (classic ALT uses 8-16).
    method : {"farthest", "random"}
        Landmark placement strategy.
    max_cached_targets : int
        Size of the per-target heuristic row cache (see
        :meth:`heuristic_to`).  ``0`` disables caching.
    observer : repro.obs.Observer, optional
        Receives ``on_cache("landmark_h_row", ...)`` events for hits and
        misses of the per-target row cache.  Assignable after
        construction (:class:`~repro.perf.warm.WarmEngine` attaches its
        own observer to a landmark set handed to it).
    """

    def __init__(
        self,
        graph,
        k: int = 8,
        *,
        method: str = "farthest",
        seed: int = 0,
        max_cached_targets: int = 64,
        observer=None,
    ) -> None:
        if graph.directed:
            raise ValueError("LandmarkSet supports undirected graphs only")
        if k < 1:
            raise ValueError("need at least one landmark")
        if method not in ("farthest", "random"):
            raise ValueError(f"unknown landmark method {method!r}")
        self.graph = graph
        n = graph.num_vertices
        k = min(k, n)
        if method == "random":
            rng = np.random.default_rng(seed)
            self.landmarks = np.sort(rng.choice(n, size=k, replace=False))
            self.dist = np.vstack([_sssp_distances(graph, int(l)) for l in self.landmarks])
        else:
            self.landmarks, self.dist = select_landmarks_farthest(graph, k, seed=seed)
        self.max_cached_targets = int(max_cached_targets)
        self.observer = observer
        self._h_cache: OrderedDict[int, Heuristic] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def k(self) -> int:
        return len(self.landmarks)

    def lower_bound(self, u: int, v: int) -> float:
        """A provable lower bound on d(u, v)."""
        du = self.dist[:, u]
        dv = self.dist[:, v]
        finite = np.isfinite(du) & np.isfinite(dv)
        if not finite.any():
            return 0.0
        return float(np.abs(du[finite] - dv[finite]).max())

    def heuristic_to(self, target: int, *, cache: bool = True) -> Heuristic:
        """The ALT heuristic estimating distance-to-``target``.

        Plug into :class:`~repro.core.policies.AStar` (``heuristic=``) or
        :class:`~repro.core.policies.BiDAStar`
        (``heuristic_to_source=``/``heuristic_to_target=``).

        Heuristics are cached per target (LRU over
        ``max_cached_targets`` entries) and wrapped in a
        :class:`~repro.heuristics.geometric.MemoizedHeuristic`, so the
        ``h`` row built for one query is reused by every later query to
        the same target instead of recomputed from the landmark matrix —
        the warm-engine path for coordinate-free graphs.  Pass
        ``cache=False`` for a fresh, unshared instance (e.g. when the
        caller resets evaluation counters for an ablation).
        """
        target = int(target)
        if not cache or self.max_cached_targets <= 0:
            return LandmarkHeuristic(self, target)
        cached = self._h_cache.get(target)
        if cached is not None:
            self.cache_hits += 1
            self._h_cache.move_to_end(target)
            if self.observer is not None:
                self.observer.on_cache("landmark_h_row", "hit")
            return cached
        self.cache_misses += 1
        if self.observer is not None:
            self.observer.on_cache("landmark_h_row", "miss")
        h: Heuristic = MemoizedHeuristic(
            LandmarkHeuristic(self, target), self.graph.num_vertices
        )
        self._h_cache[target] = h
        while len(self._h_cache) > self.max_cached_targets:
            self._h_cache.popitem(last=False)
            if self.observer is not None:
                self.observer.on_cache("landmark_h_row", "evict")
        return h

    def clear_cache(self) -> None:
        """Drop all cached per-target heuristic rows (graph mutated)."""
        self._h_cache.clear()


class LandmarkHeuristic(Heuristic):
    """``h(v) = max_L |d(L, t) - d(L, v)|`` — admissible and consistent."""

    def __init__(self, landmark_set: LandmarkSet, target: int) -> None:
        super().__init__()
        self.landmark_set = landmark_set
        self.target = int(target)
        dt = landmark_set.dist[:, self.target]
        # Landmarks that cannot see the target give no information.
        self._usable = np.isfinite(dt)
        self._dt = dt[self._usable]

    def _compute(self, vertices: np.ndarray) -> np.ndarray:
        if not self._usable.any():
            return np.zeros(len(vertices))
        dv = self.landmark_set.dist[self._usable][:, vertices]
        diff = np.abs(self._dt[:, None] - dv)
        # A landmark that cannot see v gives inf - finite = inf; mask it.
        diff[~np.isfinite(dv)] = 0.0
        return diff.max(axis=0)


def select_landmarks_farthest(
    graph, k: int, *, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Farthest-point landmark selection.

    Start from a random vertex; each subsequent landmark is the vertex
    maximizing the minimum distance to the landmarks chosen so far
    (within its connected component reach).  Returns the landmark ids
    and their ``(k, n)`` distance matrix.
    """
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    first = int(rng.integers(0, n))
    chosen = [first]
    rows = [_sssp_distances(graph, first)]
    min_dist = rows[0].copy()
    while len(chosen) < k:
        # Farthest vertex from the chosen set; a vertex no landmark can
        # reach has min_dist = inf, i.e. is "farthest" — which seeds
        # untouched components automatically.
        candidates = min_dist.copy()
        candidates[chosen] = -np.inf
        nxt = int(np.argmax(candidates))
        if candidates[nxt] == -np.inf:
            break
        chosen.append(nxt)
        row = _sssp_distances(graph, nxt)
        rows.append(row)
        min_dist = np.minimum(min_dist, row)
    return np.array(chosen, dtype=np.int64), np.vstack(rows)
