"""Geometric heuristics for A* / BiD-A* with optional memoization.

The paper uses Euclidean distances on k-NN graphs and spherical
(great-circle) distances on road networks as the A* heuristic ``h(v)``
estimating the remaining distance to the target.  Sec. 5 introduces the
memoization optimization: ``h`` is computed lazily the first time a
vertex is touched and cached, avoiding repeated trigonometry when a
vertex is relaxed many times.  Evaluation counters on every heuristic
make the Fig. 6/10 ablation directly measurable.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "euclidean_distance",
    "spherical_distance",
    "Heuristic",
    "PointHeuristic",
    "ZeroHeuristic",
    "MemoizedHeuristic",
    "make_heuristic",
    "EARTH_RADIUS_KM",
]

EARTH_RADIUS_KM = 6371.0088


def euclidean_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise Euclidean distance between coordinate arrays ``a`` and ``b``."""
    a = np.atleast_2d(a)
    b = np.atleast_2d(b)
    return np.sqrt(((a - b) ** 2).sum(axis=-1))


def spherical_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise great-circle (haversine) distance in km.

    ``a`` and ``b`` are ``(lon, lat)`` pairs in degrees, matching
    OpenStreetMap coordinates.  Deliberately heavier than the Euclidean
    formula (trig + arcsin), which is why memoization pays off more on
    road graphs (paper Fig. 6).
    """
    a = np.radians(np.atleast_2d(a))
    b = np.radians(np.atleast_2d(b))
    dlon = b[..., 0] - a[..., 0]
    dlat = b[..., 1] - a[..., 1]
    s = np.sin(dlat / 2.0) ** 2 + np.cos(a[..., 1]) * np.cos(b[..., 1]) * np.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(s, 0.0, 1.0)))


class Heuristic:
    """Base class: a vectorized lower-bound estimator ``h(v)``.

    Subclasses implement :meth:`_compute` over an int array of vertex ids.
    ``calls``/``evaluated`` counters expose how much geometric work was
    done (used by the memoization experiment).
    """

    def __init__(self) -> None:
        self.calls = 0
        self.evaluated = 0

    def __call__(self, vertices: np.ndarray) -> np.ndarray:
        vertices = np.asarray(vertices)
        self.calls += len(vertices)
        self.evaluated += len(vertices)
        return self._compute(vertices)

    def _compute(self, vertices: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def reset_counters(self) -> None:
        self.calls = 0
        self.evaluated = 0


class ZeroHeuristic(Heuristic):
    """h = 0 everywhere: turns A* into plain ET (useful as a baseline)."""

    def _compute(self, vertices: np.ndarray) -> np.ndarray:
        return np.zeros(len(vertices), dtype=np.float64)


class PointHeuristic(Heuristic):
    """Distance-to-a-fixed-point heuristic over vertex coordinates.

    ``metric`` is ``"euclidean"`` or ``"spherical"``.  With edge weights
    that are at least the metric distance between endpoints (true for our
    road and k-NN generators and for real road lengths), this heuristic is
    admissible and consistent.
    """

    def __init__(self, coords: np.ndarray, point: int, metric: str) -> None:
        super().__init__()
        if metric not in ("euclidean", "spherical"):
            raise ValueError(f"unknown metric {metric!r}")
        self.coords = coords
        self.point = int(point)
        self.metric = metric
        self._target = coords[self.point]

    def _compute(self, vertices: np.ndarray) -> np.ndarray:
        pts = self.coords[vertices]
        if self.metric == "euclidean":
            return euclidean_distance(pts, self._target[None, :])
        return spherical_distance(pts, self._target[None, :])


class MemoizedHeuristic(Heuristic):
    """Lazy per-vertex cache around another heuristic (paper Sec. 5).

    The first touch of a vertex computes and stores ``h(v)``; later
    touches are array reads.  ``evaluated`` counts only true computations,
    so ``evaluated <= calls`` quantifies the savings.
    """

    def __init__(self, inner: Heuristic, num_vertices: int) -> None:
        super().__init__()
        self.inner = inner
        self._cache = np.full(num_vertices, np.nan, dtype=np.float64)

    def __call__(self, vertices: np.ndarray) -> np.ndarray:
        vertices = np.asarray(vertices)
        self.calls += len(vertices)
        vals = self._cache[vertices]
        missing = np.isnan(vals)
        if missing.any():
            need = vertices[missing]
            # Coincident-point heuristics can legitimately be 0; NaN is the
            # only safe "not yet computed" sentinel.
            computed = self.inner._compute(need)
            self._cache[need] = computed
            vals[missing] = computed
            self.evaluated += len(need)
        return vals

    def _compute(self, vertices: np.ndarray) -> np.ndarray:  # pragma: no cover
        return self.inner._compute(vertices)


def make_heuristic(
    graph,
    point: int,
    *,
    memoize: bool = True,
) -> Heuristic:
    """Build the natural heuristic toward ``point`` for ``graph``.

    Uses the graph's ``coord_system`` (euclidean / spherical).  Raises if
    the graph carries no coordinates — exactly the paper's rule that A*
    does not apply to social/web graphs.
    """
    if graph.coords is None or graph.coord_system is None:
        raise ValueError(f"graph {graph.name!r} has no coordinates; A* not applicable")
    h = PointHeuristic(graph.coords, point, graph.coord_system)
    if memoize:
        return MemoizedHeuristic(h, graph.num_vertices)
    return h
