"""Heuristics for A*-family searches: geometric distances and landmarks."""

from .landmarks import LandmarkHeuristic, LandmarkSet, select_landmarks_farthest
from .geometric import (
    EARTH_RADIUS_KM,
    Heuristic,
    MemoizedHeuristic,
    PointHeuristic,
    ZeroHeuristic,
    euclidean_distance,
    make_heuristic,
    spherical_distance,
)

__all__ = [
    "LandmarkSet",
    "LandmarkHeuristic",
    "select_landmarks_farthest",
    "EARTH_RADIUS_KM",
    "Heuristic",
    "MemoizedHeuristic",
    "PointHeuristic",
    "ZeroHeuristic",
    "euclidean_distance",
    "make_heuristic",
    "spherical_distance",
]
