"""Named batch query types — the paper's Sec. 1 taxonomy as an API.

The introduction motivates batch PPSP with five concrete query types;
each is a one-liner over the query-graph machinery, offered here as the
interface a downstream application would actually call:

* :func:`ssmt` — single-source many-target ("nearest Walmarts");
* :func:`pairwise` — all sources × all targets ("stores × warehouses");
* :func:`multi_stop` — consecutive legs of a trip;
* :func:`subset_apsp` — all pairs within a vertex subset (the hopset /
  landmark building block);
* :func:`arbitrary_batch` — any list of (s, t) pairs.

Each returns the underlying :class:`~repro.core.batch.BatchResult`,
with a sensible default strategy per type (e.g. SSMT with many targets
defaults to the SSSP-based solution, the paper's own recommendation).
"""

from __future__ import annotations

from .batch import BatchResult, solve_batch
from .query_graph import QueryGraph

__all__ = ["ssmt", "pairwise", "multi_stop", "subset_apsp", "arbitrary_batch"]

#: beyond this many targets, one SSSP beats BiDS-from-everyone for SSMT
#: (the paper observes the flip at roughly a handful of targets).
_SSMT_SSSP_THRESHOLD = 5


def ssmt(graph, source: int, targets, *, method: str | None = None, **kwargs) -> BatchResult:
    """Single-source many-target distances.

    With few targets Multi-BiDS wins; with many, the query graph is a
    star whose vertex cover is just the source, so one SSSP is best —
    the default picks accordingly (override with ``method=``).
    """
    targets = list(targets)
    if method is None:
        method = "multi" if len(targets) < _SSMT_SSSP_THRESHOLD else "sssp-vc"
    qg = QueryGraph.star(source, targets)
    return solve_batch(graph, qg, method=method, **kwargs)


def pairwise(graph, sources, targets, *, method: str = "multi", **kwargs) -> BatchResult:
    """All-sources-to-all-targets distances (complete bipartite batch)."""
    qg = QueryGraph.bipartite(list(sources), list(targets))
    return solve_batch(graph, qg, method=method, **kwargs)


def multi_stop(graph, stops, *, method: str = "multi", **kwargs) -> BatchResult:
    """Distances of consecutive legs of a multi-stop trip (chain batch).

    The result's ``trip_length`` detail sums the legs; disconnected legs
    make it infinite.
    """
    stops = [int(s) for s in stops]
    qg = QueryGraph.chain(stops)
    res = solve_batch(graph, qg, method=method, **kwargs)
    res.details["trip_length"] = sum(
        res.distance(a, b) for a, b in zip(stops[:-1], stops[1:])
    )
    return res


def subset_apsp(graph, vertices, *, method: str = "multi", **kwargs) -> BatchResult:
    """All-pairs distances within ``vertices`` (clique batch).

    The building block the paper cites for hopsets and landmark schemes.
    """
    return solve_batch(graph, QueryGraph.clique(list(vertices)), method=method, **kwargs)


def arbitrary_batch(graph, pairs, *, method: str = "multi", **kwargs) -> BatchResult:
    """Any list of (source, target) queries."""
    return solve_batch(graph, list(pairs), method=method, **kwargs)
