"""Single-source shortest paths on the stepping engine.

Plain SSSP is both the paper's baseline (the "SSSP" rows of Tab. 4) and
the substrate of the SSSP-based batch solutions (Sec. 4.3).  It is the
engine run with a policy that never prunes.
"""

from __future__ import annotations

import numpy as np

from ..parallel.cost_model import WorkDepthMeter
from .engine import RunResult, run_policy
from .policies import SsspPolicy
from .stepping import SteppingStrategy

__all__ = ["sssp", "sssp_distances"]


def sssp(
    graph,
    source: int,
    *,
    strategy: SteppingStrategy | None = None,
    frontier_mode: str = "auto",
    pull_relax: bool = False,
    meter: WorkDepthMeter | None = None,
) -> RunResult:
    """Full shortest-path distances from ``source``.

    The returned :class:`RunResult` has the distance row in
    ``result.distances_from(0)``; unreachable vertices hold ``inf``.
    """
    return run_policy(
        graph,
        SsspPolicy(source),
        strategy=strategy,
        frontier_mode=frontier_mode,
        pull_relax=pull_relax,
        meter=meter,
    )


def sssp_distances(graph, source: int, **kwargs) -> np.ndarray:
    """Distance array only (convenience for callers that drop the stats)."""
    return sssp(graph, source, **kwargs).distances_from(0)
