"""Init / Prune / UpdateDistance triples — the paper's Table 2.

Every PPSP algorithm in Orionet is one small policy class plugged into
the shared engine:

=============  ==========================  =================================
algorithm      Prune(v)                    UpdateDistance(v)
=============  ==========================  =================================
ET             δ[v] >= μ                   v == t: write_min(μ, δ[v])
A*             δ[v] + h(v) >= μ            v == t: write_min(μ, δ[v])
BiDS           δ[v^±] >= μ/2               write_min(μ, δ[v^+] + δ[v^-])
BiD-A*         δ[v^±] + h_±(v) >= μ/2      write_min(μ, δ[v^+] + δ[v^-])
Multi-PPSP     δ[v^(i)] >= μ_max[i]/2      per query edge (q_i, q_j):
                                           write_min(μ[i,j], δ[v^i]+δ[v^j])
=============  ==========================  =================================

The BiD-A* heuristics are the consistent pair of Sec. 3.5:
``h_F(v) = (h_t(v) - h_s(v)) / 2`` and ``h_B = -h_F``, guiding both
searches toward the perpendicular-bisector region while keeping the
induced edge weights identical in both directions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..heuristics.geometric import Heuristic, make_heuristic

if TYPE_CHECKING:  # pragma: no cover
    from ..graphs.csr import Graph

__all__ = [
    "Policy",
    "SsspPolicy",
    "EarlyTermination",
    "AStar",
    "BiDS",
    "BiDAStar",
    "MultiPPSP",
]


class Policy:
    """Base policy: plain multi-source search with no pruning.

    Subclasses override the Table-2 hooks.  ``bind`` is called once per
    run with the graph and the flat ``k*n`` distance array and returns
    the seed elements (``Init``).
    """

    #: number of concurrent searches (rows of the distance matrix).
    num_sources: int = 1

    def __init__(self) -> None:
        self.graph: "Graph | None" = None
        self.n = 0
        self._extra_work = 0.0

    # -- Init ----------------------------------------------------------
    def bind(self, graph: "Graph", dist: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    # -- Prune ---------------------------------------------------------
    def prunable(self) -> bool:
        """Whether Prune can currently reject anything.

        The engine skips the (vectorized) mask evaluation entirely while
        this is False — e.g. before any s-t path has been found (μ = ∞),
        when every prune test would trivially fail.
        """
        return False

    def prune_mask(self, eids: np.ndarray, dist: np.ndarray) -> np.ndarray:
        """True where the search at an element should be skipped."""
        return np.zeros(len(eids), dtype=bool)

    # -- UpdateDistance -------------------------------------------------
    def on_relax(self, eids: np.ndarray, dist: np.ndarray) -> None:
        """Fold successfully relaxed elements into the running answer."""

    # -- framework plumbing ---------------------------------------------
    def priority(self, eids: np.ndarray, dist: np.ndarray) -> np.ndarray:
        """Ordering key used by GetDist extraction (δ, or δ+h for A*)."""
        return dist[eids]

    def source_graph(self, i: int) -> "Graph":
        """The CSR the ``i``-th search traverses (reverse for backward)."""
        return self.graph

    def finished(self, frontier_ids: np.ndarray, dist: np.ndarray) -> bool:
        """Early-termination hook checked once per step."""
        return False

    def result(self):
        """The answer this run computed."""
        raise NotImplementedError

    def charge(self, units: float) -> None:
        """Charge extra unit work (e.g. heuristic evaluations) to the step."""
        self._extra_work += units

    def take_extra_work(self) -> float:
        w, self._extra_work = self._extra_work, 0.0
        return w

    def trace_mu(self) -> float:
        """Current best-answer bound shown in step traces (NaN = n/a)."""
        return float("nan")


class SsspPolicy(Policy):
    """Single-source shortest paths: no pruning, answer = distance row.

    This is the plain "SSSP" row of Tab. 4 and the building block of the
    SSSP-based batch solutions.
    """

    def __init__(self, source: int) -> None:
        super().__init__()
        self.source = int(source)

    def bind(self, graph, dist):
        self.graph = graph
        self.n = graph.num_vertices
        if not (0 <= self.source < self.n):
            raise ValueError(f"source {self.source} out of range")
        self._dist = dist
        return np.array([self.source]), np.array([0.0])

    def result(self) -> np.ndarray:
        return self._dist


class _SingleQueryMixin:
    """Shared (s, t) validation and μ bookkeeping for single queries."""

    def _init_query(self, graph: "Graph", s: int, t: int) -> None:
        n = graph.num_vertices
        if not (0 <= s < n and 0 <= t < n):
            raise ValueError(f"query ({s}, {t}) out of range for n={n}")
        self.s = int(s)
        self.t = int(t)
        self.mu = 0.0 if s == t else np.inf

    def result(self) -> float:
        return float(self.mu)

    def trace_mu(self) -> float:
        return float(self.mu)


class EarlyTermination(_SingleQueryMixin, Policy):
    """Unidirectional search pruned at the current best distance μ."""

    def __init__(self, s: int, t: int) -> None:
        Policy.__init__(self)
        self._s_arg, self._t_arg = s, t

    def bind(self, graph, dist):
        self.graph = graph
        self.n = graph.num_vertices
        self._init_query(graph, self._s_arg, self._t_arg)
        return np.array([self.s]), np.array([0.0])

    def prunable(self):
        return np.isfinite(self.mu)

    def prune_mask(self, eids, dist):
        return dist[eids] >= self.mu

    def on_relax(self, eids, dist):
        # eids are sorted and unique; membership test via searchsorted.
        pos = np.searchsorted(eids, self.t)
        if pos < len(eids) and eids[pos] == self.t:
            self.mu = min(self.mu, float(dist[self.t]))


class AStar(_SingleQueryMixin, Policy):
    """A*: ET with a consistent heuristic folded into priority and prune.

    ``heuristic`` estimates distance-to-target; defaults to the graph's
    geometric heuristic with memoization (Sec. 5).  Pass
    ``memoize=False`` to reproduce the Fig. 6 ablation.
    """

    def __init__(
        self,
        s: int,
        t: int,
        *,
        heuristic: Heuristic | None = None,
        memoize: bool = True,
    ) -> None:
        Policy.__init__(self)
        self._s_arg, self._t_arg = s, t
        self._heuristic_arg = heuristic
        self._memoize = memoize
        self.heuristic: Heuristic | None = None

    def bind(self, graph, dist):
        self.graph = graph
        self.n = graph.num_vertices
        self._init_query(graph, self._s_arg, self._t_arg)
        if self._heuristic_arg is not None:
            self.heuristic = self._heuristic_arg
        else:
            self.heuristic = make_heuristic(graph, self.t, memoize=self._memoize)
        return np.array([self.s]), np.array([0.0])

    def _h(self, vertices: np.ndarray) -> np.ndarray:
        before = self.heuristic.evaluated
        vals = self.heuristic(vertices)
        self.charge(self.heuristic.evaluated - before)
        return vals

    def priority(self, eids, dist):
        return dist[eids] + self._h(eids)

    def prunable(self):
        return np.isfinite(self.mu)

    def prune_mask(self, eids, dist):
        return dist[eids] + self._h(eids) >= self.mu

    def on_relax(self, eids, dist):
        pos = np.searchsorted(eids, self.t)
        if pos < len(eids) and eids[pos] == self.t:
            self.mu = min(self.mu, float(dist[self.t]))


class BiDS(_SingleQueryMixin, Policy):
    """Bidirectional search with the order-free μ/2 pruning (Thm. 3.3).

    Element ids below ``n`` belong to the forward search (from ``s``);
    ids in ``[n, 2n)`` to the backward search (from ``t``).  Any vertex
    whose tentative distance from either side reaches μ/2 cannot lie on
    a path shorter than μ and is skipped.
    """

    num_sources = 2

    def __init__(self, s: int, t: int, *, disconnected_early_exit: bool = True) -> None:
        Policy.__init__(self)
        self._s_arg, self._t_arg = s, t
        self.disconnected_early_exit = disconnected_early_exit

    def bind(self, graph, dist):
        self.graph = graph
        self.n = graph.num_vertices
        self._init_query(graph, self._s_arg, self._t_arg)
        return np.array([self.s, self.n + self.t]), np.array([0.0, 0.0])

    def source_graph(self, i: int):
        if i == 1 and self.graph.directed:
            return self.graph.reverse()
        return self.graph

    def prunable(self):
        return np.isfinite(self.mu)

    def prune_mask(self, eids, dist):
        return dist[eids] >= self.mu / 2.0

    def on_relax(self, eids, dist):
        n = self.n
        v = eids % n
        partner = np.where(eids < n, v + n, v)
        total = dist[eids] + dist[partner]
        finite = np.isfinite(total)
        if finite.any():
            best = float(total[finite].min())
            if best < self.mu:
                self.mu = best

    def finished(self, frontier_ids, dist):
        # App. B disconnected-query optimization: if μ was never set and
        # one direction's search has drained, the endpoints cannot meet.
        if not self.disconnected_early_exit or np.isfinite(self.mu):
            return False
        if len(frontier_ids) == 0:
            return False
        n = self.n
        return bool((frontier_ids < n).all() or (frontier_ids >= n).all())


class BiDAStar(_SingleQueryMixin, Policy):
    """Bidirectional A* with consistent paired heuristics (Thm. 3.4).

    ``h_F(v) = (h_t(v) - h_s(v)) / 2``, ``h_B(v) = -h_F(v)``, so the
    induced edge weights agree in both directions and the BiDS μ/2 rule
    remains correct on the induced graph.
    """

    num_sources = 2

    def __init__(
        self,
        s: int,
        t: int,
        *,
        heuristic_to_source: Heuristic | None = None,
        heuristic_to_target: Heuristic | None = None,
        memoize: bool = True,
        disconnected_early_exit: bool = True,
    ) -> None:
        Policy.__init__(self)
        self._s_arg, self._t_arg = s, t
        self._hs_arg = heuristic_to_source
        self._ht_arg = heuristic_to_target
        self._memoize = memoize
        self.disconnected_early_exit = disconnected_early_exit
        self.h_s: Heuristic | None = None
        self.h_t: Heuristic | None = None

    def bind(self, graph, dist):
        self.graph = graph
        self.n = graph.num_vertices
        self._init_query(graph, self._s_arg, self._t_arg)
        self.h_s = self._hs_arg or make_heuristic(graph, self.s, memoize=self._memoize)
        self.h_t = self._ht_arg or make_heuristic(graph, self.t, memoize=self._memoize)
        return np.array([self.s, self.n + self.t]), np.array([0.0, 0.0])

    def source_graph(self, i: int):
        if i == 1 and self.graph.directed:
            return self.graph.reverse()
        return self.graph

    def _h_signed(self, eids: np.ndarray) -> np.ndarray:
        """h_F for forward elements, h_B for backward ones."""
        n = self.n
        v = eids % n
        before = self.h_s.evaluated + self.h_t.evaluated
        hf = (self.h_t(v) - self.h_s(v)) / 2.0
        self.charge(self.h_s.evaluated + self.h_t.evaluated - before)
        return np.where(eids < n, hf, -hf)

    def priority(self, eids, dist):
        return dist[eids] + self._h_signed(eids)

    def prunable(self):
        return np.isfinite(self.mu)

    def prune_mask(self, eids, dist):
        return dist[eids] + self._h_signed(eids) >= self.mu / 2.0

    def on_relax(self, eids, dist):
        n = self.n
        v = eids % n
        partner = np.where(eids < n, v + n, v)
        total = dist[eids] + dist[partner]
        finite = np.isfinite(total)
        if finite.any():
            best = float(total[finite].min())
            if best < self.mu:
                self.mu = best

    def finished(self, frontier_ids, dist):
        if not self.disconnected_early_exit or np.isfinite(self.mu):
            return False
        if len(frontier_ids) == 0:
            return False
        n = self.n
        return bool((frontier_ids < n).all() or (frontier_ids >= n).all())


class MultiPPSP(Policy):
    """Multi-directional BiDS over a query graph (Sec. 4.2, "Multi").

    One search per query-graph vertex ``q_i``; the search from ``q_i`` is
    pruned past ``μ_max[i] / 2`` where ``μ_max[i]`` is the largest
    current answer among queries incident to ``q_i``.  When an element
    ``v^(i)`` is relaxed, every incident query ``(q_i, q_j)`` tries the
    path ``q_i – v – q_j``.
    """

    def __init__(self, query_graph) -> None:
        super().__init__()
        from .query_graph import QueryGraph  # local import to avoid cycle

        if not isinstance(query_graph, QueryGraph):
            raise TypeError("MultiPPSP expects a QueryGraph")
        if query_graph.num_edges == 0:
            raise ValueError("query graph has no queries")
        self.qg = query_graph
        self.num_sources = query_graph.num_vertices
        k = self.num_sources
        self.mu = np.full((k, k), np.inf)
        np.fill_diagonal(self.mu, 0.0)
        self.mu_max = np.full(k, np.inf)

    def bind(self, graph, dist):
        self.graph = graph
        self.n = graph.num_vertices
        verts = self.qg.vertices
        if verts.max(initial=-1) >= self.n or verts.min(initial=0) < 0:
            raise ValueError("query graph vertex out of range")
        k = self.num_sources
        # Self-queries (s == t) are answered immediately by μ's diagonal.
        for i, j in self.qg.edges:
            if i == j:
                self.mu[i, j] = 0.0
        self._refresh_mu_max()
        seeds = np.arange(k, dtype=np.int64) * self.n + verts
        return seeds, np.zeros(k)

    def source_graph(self, i: int):
        if self.graph.directed and self.qg.direction is not None and self.qg.direction[i] < 0:
            return self.graph.reverse()
        return self.graph

    def prunable(self):
        return bool(np.isfinite(self.mu_max).any())

    def prune_mask(self, eids, dist):
        i = eids // self.n
        return dist[eids] >= self.mu_max[i] / 2.0

    def on_relax(self, eids, dist):
        n = self.n
        i_all = eids // n
        v_all = eids % n
        touched = False
        for i in np.unique(i_all):
            mask = i_all == i
            vs = v_all[mask]
            di = dist[eids[mask]]
            for j in self.qg.neighbors(int(i)):
                if self.mu[i, j] <= 0.0:
                    continue
                total = di + dist[j * n + vs]
                finite = np.isfinite(total)
                if not finite.any():
                    continue
                best = float(total[finite].min())
                if best < self.mu[i, j]:
                    self.mu[i, j] = self.mu[j, i] = best
                    touched = True
        if touched:
            self._refresh_mu_max()

    def _refresh_mu_max(self) -> None:
        for i in range(self.num_sources):
            nbrs = self.qg.neighbors(i)
            if len(nbrs):
                self.mu_max[i] = float(self.mu[i, nbrs].max())

    def trace_mu(self) -> float:
        """The loosest outstanding query bound (what pruning waits on)."""
        finite = self.mu_max[np.isfinite(self.mu_max)]
        return float(finite.max()) if len(finite) else float("inf")

    def result(self) -> dict[tuple[int, int], float]:
        """Answers keyed by the original (source, target) vertex pairs."""
        out: dict[tuple[int, int], float] = {}
        verts = self.qg.vertices
        for i, j in self.qg.edges:
            out[(int(verts[i]), int(verts[j]))] = float(self.mu[i, j])
        return out
