"""Orionet core: the PPSP framework, its policies, and batch solvers."""

from .batch import BATCH_METHODS, BatchResult, solve_batch
from .engine import PPSPEngine, RunResult, run_policy
from .frontier import Frontier
from .paths import PathError, meeting_vertex, stitch_bidirectional_path, walk_path
from .policies import AStar, BiDAStar, BiDS, EarlyTermination, MultiPPSP, Policy, SsspPolicy
from .query_graph import PATTERNS, QueryGraph, vertex_cover
from .query_types import arbitrary_batch, multi_stop, pairwise, ssmt, subset_apsp
from .reference import run_policy_reference
from .sssp import sssp, sssp_distances
from .tracing import StepRecord, StepTrace
from .stepping import (
    BellmanFord,
    DeltaStepping,
    DijkstraOrder,
    RhoStepping,
    SteppingStrategy,
    default_strategy,
)

__all__ = [
    "PPSPEngine",
    "RunResult",
    "run_policy",
    "run_policy_reference",
    "Frontier",
    "Policy",
    "SsspPolicy",
    "EarlyTermination",
    "AStar",
    "BiDS",
    "BiDAStar",
    "MultiPPSP",
    "QueryGraph",
    "vertex_cover",
    "PATTERNS",
    "BatchResult",
    "solve_batch",
    "BATCH_METHODS",
    "ssmt",
    "pairwise",
    "multi_stop",
    "subset_apsp",
    "arbitrary_batch",
    "StepTrace",
    "StepRecord",
    "sssp",
    "sssp_distances",
    "walk_path",
    "stitch_bidirectional_path",
    "meeting_vertex",
    "PathError",
    "SteppingStrategy",
    "DeltaStepping",
    "RhoStepping",
    "BellmanFord",
    "DijkstraOrder",
    "default_strategy",
]
