"""Query graphs: the paper's abstraction of batch PPSP queries (Sec. 4.1).

A batch of queries ``{(s, t), ...}`` becomes a graph ``G_q = (V_q, E_q)``
whose vertices are the distinct endpoints and whose edges are the
queries.  Special batch types map to recognizable patterns — SSMT = star,
pairwise = complete bipartite, multi-stop = chain, subset-APSP = clique —
and the SSSP-based batch solver needs exactly a *vertex cover* of
``G_q`` (Sec. 4.3): running SSSP from a cover answers every query.

Vertex cover is NP-hard in general; as in the paper, small query graphs
are solved exactly (enumeration over subset sizes) and large ones
greedily (repeatedly take the max-degree vertex).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

__all__ = ["QueryGraph", "vertex_cover", "PATTERNS"]


class QueryGraph:
    """The query graph ``G_q`` of one batch.

    Parameters
    ----------
    pairs : sequence of (int, int)
        The queried (source, target) vertex pairs in *graph* vertex ids.
        Duplicate pairs collapse; (s, t) and (t, s) are the same query in
        the undirected setting.
    directed : bool
        When True, pair order matters: first elements are sources
        (forward searches), second elements targets (backward searches),
        forming the bipartite split of Sec. 4.4.
    """

    def __init__(self, pairs, *, directed: bool = False) -> None:
        pairs = [(int(s), int(t)) for s, t in pairs]
        if not pairs:
            raise ValueError("empty query batch")
        self.directed = directed
        self.original_pairs = list(pairs)

        if directed:
            # Each query point splits into a source copy (searched
            # forward) and a target copy (searched backward over the
            # reverse graph); the query graph is bipartite between the
            # copies (Sec. 4.4).  A graph vertex used in both roles gets
            # two copies — folding them would answer its as-target
            # queries with forward distances.
            sources = sorted({s for s, _ in pairs})
            targets = sorted({t for _, t in pairs})
            verts = sources + targets
            #: +1 = forward search from this copy, -1 = backward search.
            self.direction = np.array(
                [1] * len(sources) + [-1] * len(targets), dtype=np.int8
            )
            src_index = {v: i for i, v in enumerate(sources)}
            tgt_index = {v: len(sources) + i for i, v in enumerate(targets)}
            index = dict(tgt_index)
            index.update(src_index)  # index_of prefers the source copy
            pair_key = lambda s, t: (src_index[s], tgt_index[t])
        else:
            verts = sorted({v for p in pairs for v in p})
            self.direction = None
            index = {v: i for i, v in enumerate(verts)}
            pair_key = lambda s, t: (
                (index[s], index[t]) if index[s] <= index[t] else (index[t], index[s])
            )
        self.vertices = np.array(verts, dtype=np.int64)

        seen: set[tuple[int, int]] = set()
        edges: list[tuple[int, int]] = []
        for s, t in pairs:
            key = pair_key(s, t)
            if key not in seen:
                seen.add(key)
                edges.append(key)
        self.edges = edges
        self._index = index
        self._nbrs: list[np.ndarray] | None = None

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def index_of(self, vertex: int) -> int:
        """Query-graph index of a graph vertex id."""
        return self._index[int(vertex)]

    def neighbors(self, i: int) -> np.ndarray:
        """Query-graph neighbor indices of vertex index ``i``."""
        if self._nbrs is None:
            nbrs: list[list[int]] = [[] for _ in range(self.num_vertices)]
            for a, b in self.edges:
                if a == b:
                    continue
                nbrs[a].append(b)
                nbrs[b].append(a)
            self._nbrs = [np.array(sorted(x), dtype=np.int64) for x in nbrs]
        return self._nbrs[i]

    def degree(self, i: int) -> int:
        return len(self.neighbors(i))

    def vertex_cover(self, *, exact_limit: int = 16) -> np.ndarray:
        """Indices of a vertex cover of ``G_q`` (exact when small)."""
        return vertex_cover(self, exact_limit=exact_limit)

    def components(self) -> list["QueryGraph"]:
        """Split the batch into its query-graph connected components.

        Queries in different components of ``G_q`` share no endpoints
        (for directed batches, no source/target *copies*), so their
        searches exchange no shortest-path information — each component
        is an independent sub-batch.  This is the unit of work the batch
        solvers decompose over: the serial multi-source solver runs the
        components one by one and the process-pool backend ships them to
        workers, which is what makes the two backends bit-identical.

        Components are returned in order of first appearance in
        ``original_pairs``; each sub-QueryGraph carries its own slice of
        the original pairs (duplicates included).  A single-component
        batch returns ``[self]`` without rebuilding.
        """
        parent = list(range(self.num_vertices))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a, b in self.edges:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        # Group pairs by the component of the source endpoint.  For
        # directed batches index_of prefers the source copy, which is an
        # endpoint of this pair's query edge, so it lands in the right
        # component in both settings.
        groups: dict[int, list[tuple[int, int]]] = {}
        order: list[int] = []
        for s, t in self.original_pairs:
            root = find(self.index_of(s))
            if root not in groups:
                groups[root] = []
                order.append(root)
            groups[root].append((s, t))
        if len(order) == 1:
            return [self]
        return [QueryGraph(groups[r], directed=self.directed) for r in order]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryGraph(|Vq|={self.num_vertices}, |Eq|={self.num_edges})"

    # ------------------------------------------------------------------
    # Pattern constructors (Fig. 7 workloads).  Each takes graph vertex
    # ids and returns the QueryGraph of the corresponding batch.
    # ------------------------------------------------------------------
    @classmethod
    def separate(cls, vertices) -> "QueryGraph":
        """Disjoint s-t pairs: vertices paired up (0,1), (2,3), ..."""
        vertices = list(vertices)
        if len(vertices) % 2:
            raise ValueError("separate pattern needs an even vertex count")
        return cls(list(zip(vertices[0::2], vertices[1::2])))

    @classmethod
    def chain(cls, stops) -> "QueryGraph":
        """Multi-stop trip: consecutive stops queried pairwise."""
        stops = list(stops)
        if len(stops) < 2:
            raise ValueError("chain needs at least two stops")
        return cls(list(zip(stops[:-1], stops[1:])))

    @classmethod
    def star(cls, center, leaves) -> "QueryGraph":
        """SSMT: one source, many targets."""
        return cls([(center, leaf) for leaf in leaves])

    @classmethod
    def fork(cls, vertices) -> "QueryGraph":
        """A chain whose last stop offers alternative endpoints.

        With six vertices: chain 0-1-2-3 plus branches 3-4 and 3-5 —
        the "options at a stop" shape from Sec. 4.1.
        """
        vertices = list(vertices)
        if len(vertices) < 4:
            raise ValueError("fork needs at least four vertices")
        branch_at = len(vertices) - 3
        chain_part = vertices[: branch_at + 1]
        pairs = list(zip(chain_part[:-1], chain_part[1:]))
        pairs += [(vertices[branch_at], v) for v in vertices[branch_at + 1 :]]
        return cls(pairs)

    @classmethod
    def diamond(cls, vertices) -> "QueryGraph":
        """Two hubs each querying the remaining vertices (K_{2,k-2})."""
        vertices = list(vertices)
        if len(vertices) < 3:
            raise ValueError("diamond needs at least three vertices")
        a, b, rest = vertices[0], vertices[1], vertices[2:]
        return cls([(a, v) for v in rest] + [(b, v) for v in rest])

    @classmethod
    def bipartite(cls, sources, targets) -> "QueryGraph":
        """Pairwise: every source queried against every target."""
        return cls([(s, t) for s in sources for t in targets])

    @classmethod
    def random_pattern(cls, vertices, num_edges: int, *, seed: int = 0) -> "QueryGraph":
        """A random simple graph on ``vertices`` with ``num_edges`` queries."""
        vertices = list(vertices)
        all_pairs = list(combinations(range(len(vertices)), 2))
        if num_edges > len(all_pairs):
            raise ValueError("too many edges requested")
        rng = np.random.default_rng(seed)
        pick = rng.choice(len(all_pairs), size=num_edges, replace=False)
        return cls([(vertices[all_pairs[p][0]], vertices[all_pairs[p][1]]) for p in pick])

    @classmethod
    def clique(cls, vertices) -> "QueryGraph":
        """Subset APSP: all pairs among ``vertices``."""
        vertices = list(vertices)
        if len(vertices) < 2:
            raise ValueError("clique needs at least two vertices")
        return cls([(a, b) for a, b in combinations(vertices, 2)])


def vertex_cover(qg: QueryGraph, *, exact_limit: int = 16) -> np.ndarray:
    """A vertex cover of the query graph, as query-graph indices.

    Directed batches are bipartite between source and target copies, so
    the *optimal* cover is computed in polynomial time via König's
    theorem (maximum matching), as the paper notes in Sec. 4.4.
    Undirected batches are NP-hard in general: exact minimum cover by
    enumerating subsets in increasing size when
    ``|V_q| <= exact_limit``; greedy max-degree otherwise (2-approximate
    in practice, and never worse than taking all sources).
    """
    edges = [(a, b) for a, b in qg.edges if a != b]
    if not edges:
        return np.empty(0, dtype=np.int64)
    if qg.directed:
        return _bipartite_vertex_cover(edges)
    k = qg.num_vertices
    if k <= exact_limit:
        # Only vertices incident to an edge can help.
        candidates = sorted({v for e in edges for v in e})
        for size in range(1, len(candidates) + 1):
            for subset in combinations(candidates, size):
                chosen = set(subset)
                if all(a in chosen or b in chosen for a, b in edges):
                    return np.array(sorted(chosen), dtype=np.int64)
    # Greedy: repeatedly pick the vertex covering the most residual edges.
    remaining = set(edges)
    cover: set[int] = set()
    while remaining:
        counts: dict[int, int] = {}
        for a, b in remaining:
            counts[a] = counts.get(a, 0) + 1
            counts[b] = counts.get(b, 0) + 1
        best = max(counts, key=lambda v: (counts[v], -v))
        cover.add(best)
        remaining = {e for e in remaining if best not in e}
    return np.array(sorted(cover), dtype=np.int64)


def _bipartite_vertex_cover(edges: list[tuple[int, int]]) -> np.ndarray:
    """Minimum vertex cover of a bipartite query graph via König.

    ``edges`` connect source-copy indices (left) to target-copy indices
    (right).  Kuhn's augmenting-path matching is ample for query-graph
    sizes; König converts the maximum matching into a minimum cover:
    ``(L \\ Z) ∪ (R ∩ Z)`` where ``Z`` is the set alternating-reachable
    from unmatched left vertices.
    """
    left = sorted({a for a, _ in edges})
    adj: dict[int, list[int]] = {a: [] for a in left}
    for a, b in edges:
        adj[a].append(b)

    match_right: dict[int, int] = {}

    def augment(a: int, visited: set[int]) -> bool:
        for b in adj[a]:
            if b in visited:
                continue
            visited.add(b)
            if b not in match_right or augment(match_right[b], visited):
                match_right[b] = a
                return True
        return False

    for a in left:
        augment(a, set())

    matched_left = set(match_right.values())
    z_left = {a for a in left if a not in matched_left}
    z_right: set[int] = set()
    stack = list(z_left)
    while stack:
        a = stack.pop()
        for b in adj[a]:
            if b not in z_right:
                z_right.add(b)
                owner = match_right.get(b)
                if owner is not None and owner not in z_left:
                    z_left.add(owner)
                    stack.append(owner)
    cover = (set(left) - z_left) | z_right
    return np.array(sorted(cover), dtype=np.int64)


#: Registry of Fig. 7 pattern names -> constructor over six vertices.
PATTERNS = {
    "separate": lambda vs: QueryGraph.separate(vs),
    "chain": lambda vs: QueryGraph.chain(vs),
    "star": lambda vs: QueryGraph.star(vs[0], vs[1:]),
    "fork": lambda vs: QueryGraph.fork(vs),
    "diamond": lambda vs: QueryGraph.diamond(vs),
    "bipartite": lambda vs: QueryGraph.bipartite(vs[: len(vs) // 2], vs[len(vs) // 2 :]),
    "random": lambda vs: QueryGraph.random_pattern(vs, num_edges=max(len(vs), 3), seed=7),
    "clique": lambda vs: QueryGraph.clique(vs),
}
