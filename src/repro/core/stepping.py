r"""Stepping-algorithm strategies: the ``GetDist`` plug-ins of Alg. 1.

The stepping framework (Dong et al., SPAA'21) abstracts parallel SSSP
algorithms by how they pick the per-step extraction threshold θ:

* **Δ\*-stepping** — the ``i``-th step extracts everything below
  ``i·Δ`` (the paper's default; best on large-diameter graphs);
* **ρ-stepping** — extract the ρ closest frontier elements;
* **Bellman-Ford** — extract the whole frontier every step;
* **Dijkstra** — extract only the minimum-priority elements, which
  reproduces the sequential settle order (used as an in-framework oracle).

Strategies are tiny stateful objects: ``reset()`` before a run, then
``threshold(priorities)`` once per step with the current frontier's
priority array.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "SteppingStrategy",
    "DeltaStepping",
    "RhoStepping",
    "BellmanFord",
    "DijkstraOrder",
    "default_strategy",
]


class SteppingStrategy:
    """Base class for ``GetDist`` policies."""

    def reset(self) -> None:
        """Prepare for a fresh run (strategies may keep step counters)."""

    def threshold(self, priorities: np.ndarray) -> float:
        """Extraction threshold θ for this step.

        ``priorities`` is the nonempty frontier's priority array; the
        returned θ must be >= its minimum so every step makes progress.
        """
        raise NotImplementedError


class DeltaStepping(SteppingStrategy):
    r"""Δ\*-stepping: θ is the end of the minimum element's bucket.

    Each step extracts every element with priority below ``(i+1)·Δ``
    where ``i`` is the bucket of the current frontier minimum — i.e. the
    current bucket is processed (one relaxation wave per step) until it
    drains, then θ advances to the next nonempty bucket.  Keyed off the
    live minimum rather than a step counter so θ never runs ahead of the
    search wavefront, which matters for A* priorities that start near
    ``h(source)``.
    """

    def __init__(self, delta: float) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = float(delta)

    def threshold(self, priorities: np.ndarray) -> float:
        lo = float(priorities.min())
        bucket = math.floor(lo / self.delta)
        return (bucket + 1) * self.delta


class RhoStepping(SteppingStrategy):
    """ρ-stepping: extract the ρ smallest-priority elements each step."""

    def __init__(self, rho: int) -> None:
        if rho < 1:
            raise ValueError("rho must be >= 1")
        self.rho = int(rho)

    def threshold(self, priorities: np.ndarray) -> float:
        if len(priorities) <= self.rho:
            return float("inf")
        kth = np.partition(priorities, self.rho - 1)[self.rho - 1]
        return float(kth)


class BellmanFord(SteppingStrategy):
    """Process the entire frontier every step (maximum parallelism)."""

    def threshold(self, priorities: np.ndarray) -> float:
        return float("inf")


class DijkstraOrder(SteppingStrategy):
    """Extract only minimum-priority elements: Dijkstra's settle order.

    Within the framework this is exact Dijkstra (ties processed
    together), so it doubles as a correctness oracle for the stepping
    engine itself.
    """

    def threshold(self, priorities: np.ndarray) -> float:
        return float(priorities.min())


#: weight dispersion (std/mean) above which the static 2×mean Δ guess is
#: considered poor and the measured doubling procedure takes over.  A
#: uniform distribution sits at ~0.58 and exponential at 1.0, so the
#: benchmark/test graphs keep the cheap static guess; heavy-tailed
#: weights (lognormal with σ ≳ 1.2, power-law costs) cross it.
CALIBRATE_CV_THRESHOLD = 1.5


def default_strategy(graph, *, calibrate: str = "auto") -> DeltaStepping:
    """A reasonable Δ for ``graph``.

    The static guess is twice the mean edge weight — good whenever the
    weight distribution is tight.  When the dispersion (std/mean) says
    otherwise (``calibrate="auto"``, the default), Δ comes from the
    paper's Sec. 6.1 doubling procedure instead
    (:func:`repro.kernels.calibrate.calibrate_delta`), whose per-graph
    result is fingerprint-cached so the tuning runs are paid once per
    process.  ``calibrate="never"`` forces the static guess,
    ``"always"`` forces the measured procedure.
    """
    if calibrate not in ("auto", "never", "always"):
        raise ValueError(f"unknown calibrate mode {calibrate!r}")
    if graph.num_edges == 0:
        return DeltaStepping(1.0)
    mean_w, std_w = graph.weight_stats()
    if calibrate == "always" or (
        calibrate == "auto"
        and mean_w > 0
        and std_w > CALIBRATE_CV_THRESHOLD * mean_w
    ):
        from ..kernels.calibrate import calibrate_delta  # lazy: avoids a cycle

        return DeltaStepping(calibrate_delta(graph))
    return DeltaStepping(max(mean_w * 2.0, 1e-12))
