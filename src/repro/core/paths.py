"""Shortest-path reconstruction from converged distance arrays.

The engine maintains distances, not parent pointers (parent updates
would add contention in the parallel setting and the paper's queries
return distances).  Paths are recovered afterwards by the standard
backward walk: from ``t``, repeatedly step to any in-neighbor ``u`` with
``dist[u] + w(u, t) == dist[t]``.  For bidirectional runs the forward
and backward walks are stitched at the meeting vertex
``argmin_v δ[v^+] + δ[v^-]``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["walk_path", "stitch_bidirectional_path", "meeting_vertex", "PathError"]

_REL_TOL = 1e-9
_ABS_TOL = 1e-9


class PathError(RuntimeError):
    """Raised when no consistent path exists (e.g. unreachable target)."""


def walk_path(graph, dist: np.ndarray, source: int, target: int) -> list[int]:
    """Reconstruct a shortest path ``source -> target`` from SSSP distances.

    ``dist`` must be (at least on the path) converged distances from
    ``source`` over ``graph``.  Runs the backward walk over in-edges
    (``graph.reverse()`` handles directed inputs).
    """
    if not np.isfinite(dist[target]):
        raise PathError(f"target {target} unreachable")
    rev = graph if not graph.directed else graph.reverse()
    path = [int(target)]
    v = int(target)
    # Each hop strictly decreases dist[v], so n iterations suffice for any
    # graph with positive weights; zero-weight cycles are cut by the
    # visited set.
    visited = {v}
    for _ in range(graph.num_vertices + 1):
        if v == source:
            return path[::-1]
        nbrs = rev.neighbors(v)
        ws = rev.neighbor_weights(v)
        ok = np.isclose(dist[nbrs] + ws, dist[v], rtol=_REL_TOL, atol=_ABS_TOL)
        ok &= np.isfinite(dist[nbrs])
        candidates = nbrs[ok]
        nxt = None
        for u in candidates:
            if int(u) not in visited:
                nxt = int(u)
                break
        if nxt is None:
            # Zero-weight plateau may force revisiting; accept any witness.
            if len(candidates) == 0:
                raise PathError(f"no predecessor found at vertex {v}")
            nxt = int(candidates[0])
        visited.add(nxt)
        path.append(nxt)
        v = nxt
    raise PathError("path reconstruction did not terminate")


def meeting_vertex(dist_forward: np.ndarray, dist_backward: np.ndarray) -> int:
    """The vertex minimizing δ[v^+] + δ[v^-] (lies on a shortest s-t path)."""
    total = dist_forward + dist_backward
    best = int(np.argmin(total))
    if not np.isfinite(total[best]):
        raise PathError("searches never met: target unreachable")
    return best


def stitch_bidirectional_path(
    graph, dist_forward: np.ndarray, dist_backward: np.ndarray, s: int, t: int
) -> list[int]:
    """Full s-t path from the two halves of a bidirectional run.

    ``dist_forward`` is from ``s`` over the graph; ``dist_backward``
    from ``t`` over the reverse orientation (== the graph itself when
    undirected).
    """
    m = meeting_vertex(dist_forward, dist_backward)
    forward = walk_path(graph, dist_forward, s, m)
    rev = graph if not graph.directed else graph.reverse()
    backward = walk_path(rev, dist_backward, t, m)
    # backward is t -> m in the reverse orientation == m -> t in the graph.
    return forward + backward[::-1][1:]
