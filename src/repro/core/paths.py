"""Shortest-path reconstruction from converged distance arrays.

The engine maintains distances, not parent pointers (parent updates
would add contention in the parallel setting and the paper's queries
return distances).  Paths are recovered afterwards by the standard
backward walk: from ``t``, repeatedly step to any in-neighbor ``u`` with
``dist[u] + w(u, t) == dist[t]``.  For bidirectional runs the forward
and backward walks are stitched at the meeting vertex
``argmin_v δ[v^+] + δ[v^-]``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["walk_path", "stitch_bidirectional_path", "meeting_vertex", "PathError"]

_REL_TOL = 1e-9
_ABS_TOL = 1e-9


class PathError(RuntimeError):
    """Raised when no consistent path exists (e.g. unreachable target)."""


def walk_path(graph, dist: np.ndarray, source: int, target: int) -> list[int]:
    """Reconstruct a shortest path ``source -> target`` from SSSP distances.

    ``dist`` must be (at least on the path) converged distances from
    ``source`` over ``graph``.  Runs the backward walk over in-edges
    (``graph.reverse()`` handles directed inputs).
    """
    if not np.isfinite(dist[target]):
        raise PathError(f"target {target} unreachable")
    rev = graph if not graph.directed else graph.reverse()
    source = int(source)
    target = int(target)
    return _walk_path_dfs(rev, dist, source, target)


def _walk_path_dfs(rev, dist: np.ndarray, source: int, target: int) -> list[int]:
    """Backtracking walk over the valid-predecessor relation.

    Scalar scans over the cached ``csr_lists()`` view: at typical
    road/knn degrees each hop touches a handful of edges, where numpy
    scalar indexing and boxing dominate the walk.
    A greedy single walk is not enough: on a zero-weight plateau every
    neighbor looks equally good and a wrong witness can strand the walk
    in an already-visited pocket, so we must be able to back out.
    Strict-progress candidates (dist[u] < dist[v]) are pushed last and
    therefore explored first; plateau hops only when forced.
    """
    indptr, indices, weights = rev.csr_lists()
    ditem = dist.item
    stack = [target]
    parent: dict[int, int | None] = {target: None}
    while stack:
        v = stack.pop()
        if v == source:
            path = []
            u: int | None = v
            while u is not None:
                path.append(u)
                u = parent[u]
            return path
        dv = ditem(v)
        tol = _ABS_TOL + _REL_TOL * abs(dv)
        candidates = []
        for e in range(indptr[v], indptr[v + 1]):
            u = indices[e]
            if u in parent:
                continue
            du = ditem(u)
            # |dist[u] + w - dist[v]| <= atol + rtol * |dist[v]| —
            # np.isclose semantics; an unreachable du (inf) overflows the
            # bound and drops out without a separate finiteness mask.
            if abs(du + weights[e] - dv) <= tol:
                candidates.append((du, u))
        # Descending-distance push order; stable for plateau ties.
        candidates.sort(key=lambda c: c[0], reverse=True)
        for _, u in candidates:
            if u not in parent:
                parent[u] = v
                stack.append(u)
    raise PathError(f"no shortest-path certificate from {source} to {target}")


def meeting_vertex(dist_forward: np.ndarray, dist_backward: np.ndarray) -> int:
    """The vertex minimizing δ[v^+] + δ[v^-] (lies on a shortest s-t path)."""
    total = dist_forward + dist_backward
    best = int(np.argmin(total))
    if not np.isfinite(total[best]):
        raise PathError("searches never met: target unreachable")
    return best


def stitch_bidirectional_path(
    graph, dist_forward: np.ndarray, dist_backward: np.ndarray, s: int, t: int
) -> list[int]:
    """Full s-t path from the two halves of a bidirectional run.

    ``dist_forward`` is from ``s`` over the graph; ``dist_backward``
    from ``t`` over the reverse orientation (== the graph itself when
    undirected).
    """
    m = meeting_vertex(dist_forward, dist_backward)
    forward = walk_path(graph, dist_forward, s, m)
    rev = graph if not graph.directed else graph.reverse()
    backward = walk_path(rev, dist_backward, t, m)
    # backward is t -> m in the reverse orientation == m -> t in the graph.
    return forward + backward[::-1][1:]
