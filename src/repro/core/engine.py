"""The PPSP framework engine — the paper's Algorithm 2.

One engine drives every algorithm in Orionet.  A :class:`~repro.core.
policies.Policy` supplies the three user-defined functions of the
framework —

* ``Init``   (:meth:`Policy.bind`: seed elements and distances),
* ``Prune``  (:meth:`Policy.prune_mask`: skip elements that cannot
  improve any answer),
* ``UpdateDistance`` (:meth:`Policy.on_relax`: fold freshly relaxed
  elements into the running answer μ),

while a :class:`~repro.core.stepping.SteppingStrategy` supplies
``GetDist`` (the per-step threshold θ of Alg. 1).

Searches from multiple sources share one flat distance array indexed by
*composite element ids* ``e = i * n + v`` — vertex ``v`` searched from
the ``i``-th source, the paper's ``v^(i)`` copies.  Each step extracts
all frontier elements with priority <= θ, relaxes their out-edges as one
vectorized batch (the data-parallel inner loop of the fork-join
algorithm), applies ``write_min`` over the targets, and feeds the
successfully relaxed elements to the policy.

Work/depth of every step is recorded in a
:class:`~repro.parallel.cost_model.WorkDepthMeter` so that simulated
parallel times (Fig. 5/9) come from the same execution that produced the
answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..kernels.relax import gather_relax
from ..kernels.scatter import get_kernel
from ..parallel.cost_model import WorkDepthMeter
from ..parallel.primitives import expand_ranges
from .frontier import Frontier
from .stepping import SteppingStrategy, default_strategy

if TYPE_CHECKING:  # pragma: no cover
    from ..graphs.csr import Graph
    from .policies import Policy

__all__ = ["PPSPEngine", "RunResult", "run_policy"]


@dataclass
class RunResult:
    """Outcome of one engine run.

    ``dist`` is the ``(k, n)`` tentative-distance matrix at termination
    (row ``i`` = distances from the ``i``-th source; settled vertices hold
    true distances).  ``answer`` is whatever the policy's ``result()``
    returns — a float μ for single queries, a per-query dict for batches.

    ``exhausted`` is True when an execution budget stopped the run before
    the frontier drained; ``answer`` then holds the policy's current
    upper bound (graceful degradation) and ``budget_report`` says which
    limit tripped.
    """

    answer: object
    dist: np.ndarray
    meter: WorkDepthMeter
    steps: int
    relaxations: int
    policy: "Policy"
    graph: "Graph"
    exhausted: bool = False
    budget_report: object | None = None
    #: with ``track_processed=True``: the ``(k, n)`` snapshot of each
    #: element's tentative distance at its most recent extraction (inf =
    #: never relaxed).  Certificates sample relaxation facts from it.
    processed_dist: np.ndarray | None = None

    def distances_from(self, source_index: int = 0) -> np.ndarray:
        """Tentative distances from one source (full SSSP row)."""
        return self.dist[source_index]


class PPSPEngine:
    """Configured executor of the PPSP framework.

    Parameters
    ----------
    graph : Graph
        The input graph.
    strategy : SteppingStrategy, optional
        ``GetDist`` plug-in; defaults to untuned Δ*-stepping.
    frontier_mode : {"auto", "sparse", "dense"}
        Frontier representation (App. B sparse-dense optimization).
    pull_relax : bool
        Enable the bidirectional relaxation optimization (App. B): before
        pushing from an extracted vertex, pull the best distance from its
        in-neighbors so it pushes the tightest value it can.
    max_steps : int or None
        Safety valve for tests; production runs terminate naturally.
    budget : Budget or BudgetMeter or None
        Execution budget (:mod:`repro.robustness.budget`).  A ``Budget``
        spec is started fresh per run; a live ``BudgetMeter`` is charged
        in place, letting several runs share one budget.  Exhaustion
        stops the run at a step boundary with ``RunResult.exhausted``.
    auditor : InvariantAuditor or None
        Checked mode (:mod:`repro.robustness.auditor`): verify framework
        invariants after every step, raising ``InvariantViolation``.
    fault_injector : FaultInjector or None
        Chaos hook (:mod:`repro.robustness.faults`); production runs
        leave this None.
    arena : BufferArena or None
        Buffer pool (:mod:`repro.perf.arena`).  When set, the ``(k*n,)``
        distance array and dense frontier masks are acquired from the
        pool instead of freshly allocated; the distance buffer stays
        leased inside the returned :class:`RunResult` (``result.dist``
        is a view of it) and it is the *caller's* job to release it —
        :class:`~repro.perf.warm.WarmEngine` scopes this automatically.
    observer : Observer or None
        Observability hook (:mod:`repro.obs`), duck-typed like the
        robustness hooks so the core stays import-free of repro.obs.
        When set, every run is traced (the observer supplies a
        :class:`~repro.core.tracing.StepTrace` if the caller didn't)
        and folded into the observer's metrics and current span at run
        end.  ``None`` — the default — costs one ``is None`` test.
    track_processed : bool
        Record, per element, the tentative distance it held when it was
        last extracted for relaxation (``RunResult.processed_dist``).
        Certificate emission (:mod:`repro.verify`) samples sound
        relaxation facts from this snapshot: an extracted element
        relaxed *all* its out-edges, so ``dist[v] <= snapshot[u] + w``
        must hold at termination.  Off by default — the extra ``(k*n,)``
        buffer and per-step scatter stay out of the hot path.
    kernel : str, Kernel, or None
        Scatter-min implementation for the relaxation inner loop
        (:mod:`repro.kernels`): ``"ufunc_at"``, ``"sort_reduceat"``, or
        ``"auto"`` (the default — per-batch dispatch on a calibrated
        size threshold).  ``None`` resolves through the ``REPRO_KERNEL``
        environment variable.  Every implementation is bit-identical;
        pin one for debugging or benchmarking.
    """

    def __init__(
        self,
        graph: "Graph",
        *,
        strategy: SteppingStrategy | None = None,
        frontier_mode: str = "auto",
        pull_relax: bool = False,
        max_steps: int | None = None,
        budget=None,
        auditor=None,
        fault_injector=None,
        arena=None,
        observer=None,
        track_processed: bool = False,
        kernel=None,
    ) -> None:
        self.graph = graph
        self.strategy = strategy if strategy is not None else default_strategy(graph)
        self.frontier_mode = frontier_mode
        self.pull_relax = pull_relax
        self.max_steps = max_steps
        self.budget = budget
        self.auditor = auditor
        self.fault_injector = fault_injector
        self.arena = arena
        self.observer = observer
        self.track_processed = track_processed
        self.kernel = get_kernel(kernel)

    # ------------------------------------------------------------------
    def run(
        self,
        policy: "Policy",
        *,
        meter: WorkDepthMeter | None = None,
        trace=None,
        budget=None,
    ) -> RunResult:
        """Execute Alg. 2 with ``policy`` until the frontier drains.

        ``trace`` (a :class:`~repro.core.tracing.StepTrace`) receives a
        per-step record of θ, frontier sizes, prune counts, and μ.
        ``budget`` overrides the engine-level budget for this run only
        (a Budget spec or a live BudgetMeter, same duck-typing).
        """
        graph = self.graph
        observer = self.observer
        if observer is not None:
            trace = observer.begin_run(policy, trace)
        n = graph.num_vertices
        k = policy.num_sources
        if self.arena is not None:
            dist = self.arena.acquire(k * n, dtype=np.float64, fill=np.inf)
        else:
            dist = np.full(k * n, np.inf, dtype=np.float64)
        meter = meter if meter is not None else WorkDepthMeter()
        # Certificate support: snapshot of dist[e] at e's last extraction.
        # Allocated outside the arena — it outlives the run inside results.
        pdist = (
            np.full(k * n, np.inf, dtype=np.float64)
            if self.track_processed
            else None
        )
        self.strategy.reset()

        seeds, seed_vals = policy.bind(graph, dist)
        seeds = np.asarray(seeds, dtype=np.int64)
        dist[seeds] = np.asarray(seed_vals, dtype=np.float64)
        policy.on_relax(seeds, dist)

        frontier = Frontier(
            k * n, mode=self.frontier_mode, arena=self.arena, observer=observer
        )
        frontier.add(seeds)

        # Robustness hooks are duck-typed so the core stays import-free
        # of repro.robustness: a Budget spec (has .start) opens a fresh
        # meter; a live BudgetMeter is charged in place (shared budgets).
        injector = self.fault_injector
        auditor = self.auditor
        bmeter = budget if budget is not None else self.budget
        if bmeter is not None and not hasattr(bmeter, "charge"):
            bmeter = bmeter.start()
        if injector is not None:
            injector.on_bind(policy, graph)
        if auditor is not None:
            auditor.start(policy, graph, dist)

        # Group source indices by the graph they traverse (identical for
        # undirected inputs; forward/reverse split for directed BiDS).
        groups = _source_graph_groups(policy, k)

        steps = 0
        relaxations = 0
        exhausted_reason = None
        empty = np.empty(0, dtype=np.int64)
        while len(frontier):
            if self.max_steps is not None and steps >= self.max_steps:
                break
            if bmeter is not None:
                exhausted_reason = bmeter.check()
                if exhausted_reason is not None:
                    break
            if injector is not None:
                injector.on_step_start(steps, dist, frontier, policy)
            current = frontier.ids()
            if policy.finished(current, dist):
                break
            prio = policy.priority(current, dist)
            theta = self.strategy.threshold(prio)
            take = prio <= theta
            if take.all():
                # Whole-frontier steps (Bellman-Ford strategy, bucket
                # tails) skip the two fancy-index copies.
                process, deferred = current, empty
            else:
                process = current[take]
                deferred = current[~take]
            extracted_count = len(process)

            # Prune both halves: processed elements that cannot contribute
            # are skipped (line 6 of Alg. 2); stale deferred elements are
            # dropped so μ improvements shrink the frontier immediately.
            # While the policy cannot prune yet (μ = ∞) the masks are
            # skipped wholesale.
            step_work = float(len(current))
            pruned_count = 0
            pruned_parts: list[np.ndarray] = []
            prunable = policy.prunable()
            if prunable and len(process):
                mask = policy.prune_mask(process, dist)
                if auditor is not None and mask.any():
                    pruned_parts.append(process[mask])
                process = process[~mask]
            if prunable and len(deferred):
                mask = policy.prune_mask(deferred, dist)
                if auditor is not None and mask.any():
                    pruned_parts.append(deferred[mask])
                deferred = deferred[~mask]
                pruned_count += int(mask.sum())
            pruned_count += extracted_count - len(process)
            frontier.replace(deferred, assume_sorted=True)

            step_edges = 0
            improved_count = 0
            changed_kept = empty
            if len(process):
                if pdist is not None:
                    # Values about to be used for relaxation.  A later
                    # group may lower some of them mid-step, so the
                    # snapshot is an upper bound on the value actually
                    # used — which keeps dist[v] <= pdist[u] + w sound.
                    pdist[process] = dist[process]
                changed_all: list[np.ndarray] = []
                for graph_obj, source_mask in groups:
                    if source_mask is None:
                        batch = process
                    else:
                        batch = process[source_mask[process // n]]
                    if len(batch) == 0:
                        continue
                    changed, edge_count = self._relax_batch(graph_obj, batch, dist, n)
                    relaxations += edge_count
                    step_edges += edge_count
                    step_work += len(batch) + edge_count
                    if len(changed):
                        changed_all.append(changed)

                if changed_all:
                    # scatter_min returns sorted unique ids, so the
                    # single-group case (all undirected searches) skips
                    # the extra unique sort entirely.
                    if len(changed_all) == 1:
                        changed = changed_all[0]
                    else:
                        changed = np.unique(np.concatenate(changed_all))
                    improved_count = len(changed)
                    step_work += float(improved_count)
                    policy.on_relax(changed, dist)
                    if policy.prunable():
                        mask = policy.prune_mask(changed, dist)
                        if auditor is not None and mask.any():
                            pruned_parts.append(changed[mask])
                        changed = changed[~mask]
                        pruned_count += improved_count - len(changed)
                    changed_kept = changed
                    frontier.add(changed_kept)

            if injector is not None:
                injector.on_step_end(steps, dist, frontier, policy)
            if auditor is not None:
                auditor.after_step(
                    steps, dist, policy,
                    frontier_ids=frontier.ids(),
                    deferred=deferred,
                    changed_kept=changed_kept,
                    processed=process,
                    pruned=np.concatenate(pruned_parts) if pruned_parts else empty,
                )

            step_work += policy.take_extra_work()
            meter.record_step(step_work)
            if trace is not None:
                trace.record(
                    step=steps, theta=float(theta), frontier_size=len(current),
                    extracted=extracted_count, pruned=pruned_count,
                    relaxed_edges=step_edges, improved=improved_count,
                    mu=policy.trace_mu(),
                )
            if bmeter is not None:
                bmeter.charge(steps=1, relaxations=step_edges)
            steps += 1

        # Dense frontier masks go straight back to the pool; the dist
        # buffer stays leased because RunResult.dist views it.
        frontier.dispose()
        result = RunResult(
            answer=policy.result(),
            dist=dist.reshape(k, n),
            meter=meter,
            steps=steps,
            relaxations=relaxations,
            policy=policy,
            graph=graph,
            exhausted=exhausted_reason is not None,
            budget_report=bmeter.report() if bmeter is not None else None,
            processed_dist=pdist.reshape(k, n) if pdist is not None else None,
        )
        if observer is not None:
            kernel_stats = self.kernel.take_stats()
            if kernel_stats:
                observer.on_kernel(kernel_stats)
            observer.end_run(result, trace)
        return result

    # ------------------------------------------------------------------
    def _relax_batch(
        self, graph: "Graph", eids: np.ndarray, dist: np.ndarray, n: int
    ) -> tuple[np.ndarray, int]:
        """Relax all out-edges of ``eids`` in one vectorized batch.

        Returns the composite ids whose tentative distance strictly
        improved, plus the number of edges touched.
        """
        v = eids % n
        src_off = eids - v  # i * n per element

        if self.pull_relax:
            self._pull_relax(graph, eids, v, src_off, dist)

        te, new_d, edge_count = gather_relax(
            graph, eids, v, src_off, dist, scratch=self.kernel.scratch
        )
        if edge_count == 0:
            return np.empty(0, dtype=np.int64), 0

        before = dist[te]
        improving = new_d < before
        if not improving.any():
            return np.empty(0, dtype=np.int64), edge_count
        # Every unique improving target strictly changed: its final value
        # is <= the smallest proposal, which was < the pre-batch value.
        changed = self.kernel.scatter_min(dist, te[improving], new_d[improving])
        return changed, edge_count

    def _pull_relax(
        self,
        graph: "Graph",
        eids: np.ndarray,
        v: np.ndarray,
        src_off: np.ndarray,
        dist: np.ndarray,
    ) -> None:
        """Bidirectional relaxation (App. B): tighten δ[u] from in-neighbors."""
        rev = graph if not graph.directed else graph.reverse()
        starts = rev.indptr[v]
        counts = rev.out_degrees()[v]
        has = counts > 0
        if not has.any():
            return
        edge_idx = expand_ranges(starts[has], counts[has])
        nbr = rev.indices[edge_idx].astype(np.int64)
        ne = np.repeat(src_off[has], counts[has]) + nbr
        cand = dist[ne] + rev.weights[edge_idx]
        # Segment-min per extracted element, then write_min into dist.
        ends = np.cumsum(counts[has])
        seg_starts = np.concatenate([[0], ends[:-1]])
        mins = np.minimum.reduceat(cand, seg_starts)
        self.kernel.scatter_min(dist, eids[has], mins)


def _source_graph_groups(policy: "Policy", k: int):
    """Group the k sources by the CSR they traverse.

    Returns a list of ``(graph, source_mask)`` pairs; ``source_mask`` is
    None when every source shares one graph (the overwhelmingly common
    undirected case, which then skips the mask gather entirely).
    """
    graphs = [policy.source_graph(i) for i in range(k)]
    if all(g is graphs[0] for g in graphs):
        return [(graphs[0], None)]
    groups: list[tuple[object, np.ndarray]] = []
    seen: dict[int, int] = {}
    masks: list[np.ndarray] = []
    objs: list[object] = []
    for i, g in enumerate(graphs):
        key = id(g)
        if key not in seen:
            seen[key] = len(objs)
            objs.append(g)
            masks.append(np.zeros(k, dtype=bool))
        masks[seen[key]][i] = True
    return list(zip(objs, masks))


def run_policy(
    graph: "Graph",
    policy: "Policy",
    *,
    strategy: SteppingStrategy | None = None,
    frontier_mode: str = "auto",
    pull_relax: bool = False,
    meter: WorkDepthMeter | None = None,
    max_steps: int | None = None,
    budget=None,
    auditor=None,
    fault_injector=None,
    arena=None,
    observer=None,
    trace=None,
    track_processed: bool = False,
    kernel=None,
) -> RunResult:
    """One-shot convenience wrapper around :class:`PPSPEngine`."""
    engine = PPSPEngine(
        graph,
        strategy=strategy,
        frontier_mode=frontier_mode,
        pull_relax=pull_relax,
        max_steps=max_steps,
        budget=budget,
        auditor=auditor,
        fault_injector=fault_injector,
        arena=arena,
        observer=observer,
        track_processed=track_processed,
        kernel=kernel,
    )
    return engine.run(policy, meter=meter, trace=trace)
