"""Batch PPSP solvers (Sec. 4): Multi-BiDS, plain BiDS, and SSSP-based.

Four strategies over one :class:`~repro.core.query_graph.QueryGraph`,
matching the columns of the paper's Fig. 7:

* ``multi``        — Multi-BiDS: one engine run searching from every
  query-graph vertex with per-source radii (Sec. 4.2);
* ``plain-bids``   — our parallel BiDS per query, one query at a time;
* ``plain-star-bids`` (the paper's "Plain*") — all per-query BiDS runs
  launched simultaneously; on the simulated machine their steps overlap;
* ``sssp-plain``   — full SSSP from every distinct query source;
* ``sssp-vc``      — full SSSP from a vertex cover of the query graph
  (Sec. 4.3), the minimum set of SSSPs that answers everything.

Each solver returns a :class:`BatchResult` carrying per-query distances
and the run's work/depth meter, so simulated parallel times are directly
comparable across strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..parallel.cost_model import WorkDepthMeter
from .engine import run_policy
from .paths import stitch_bidirectional_path, walk_path
from .policies import BiDS, MultiPPSP, SsspPolicy
from .query_graph import QueryGraph
from .stepping import SteppingStrategy

__all__ = ["BatchResult", "solve_batch", "BATCH_METHODS"]

BATCH_METHODS = ("multi", "plain-bids", "plain-star-bids", "sssp-plain", "sssp-vc")


@dataclass
class BatchResult:
    """Answers for one batch: ``distances[(s, t)]`` per queried pair.

    ``exact`` is False when an execution budget ran out mid-batch: the
    recorded distances are then the searches' current upper bounds
    (``inf`` for queries the budget never reached) and
    ``details["budget_report"]`` says which limit tripped.
    """

    distances: dict[tuple[int, int], float]
    meter: WorkDepthMeter
    method: str
    num_searches: int
    details: dict = field(default_factory=dict)
    exact: bool = True
    shed: set = field(default_factory=set)
    #: per-pair :class:`repro.verify.Certificate`, keyed like
    #: ``distances``; populated by ``solve_batch(..., certify=True)``.
    certificates: dict | None = field(default=None, repr=False)
    _path_state: dict | None = field(default=None, repr=False)

    def distance(self, s: int, t: int) -> float:
        """The answered distance for one queried pair (either orientation).

        Pairs the serve pipeline shed (or otherwise never reached — see
        ``shed``) return ``inf``: they were part of the batch but carry
        no answer.  A pair that was never in the batch at all raises a
        ``ValueError`` naming it, rather than a bare ``KeyError`` on the
        reversed key.
        """
        s, t = int(s), int(t)
        for key in ((s, t), (t, s)):
            if key in self.distances:
                return self.distances[key]
        for key in ((s, t), (t, s)):
            if key in self.shed:
                return float("inf")
        raise ValueError(f"pair ({s}, {t}) was never part of this batch")

    def path(self, s: int, t: int) -> list[int]:
        """A shortest vertex path for one queried pair.

        Available for ``multi`` (stitched at the meeting vertex from the
        two search halves) and the SSSP-based methods (backward walk
        over the covering row).  The plain per-query BiDS modes discard
        per-query state; use ``multi`` when paths are needed.
        """
        st = self._path_state
        if st is None:
            raise NotImplementedError(
                f"paths are not retained by method {self.method!r}; "
                "use method='multi' or an SSSP-based method"
            )
        if s == t:
            return [int(s)]
        if st["kind"] == "precomputed":
            # Pool results carry worker-reconstructed paths: the worker
            # ran the same stitch/walk over the same rows the serial
            # backend would have used, so the vertices are identical.
            paths = st["paths"]
            key = (s, t) if (s, t) in paths else (t, s)
            if key not in paths:
                raise KeyError(f"({s}, {t}) was not part of this batch")
            path = paths[key]
            if path is None:
                from .paths import PathError

                raise PathError(f"no finite path recorded for query ({s}, {t})")
            return list(path) if key == (s, t) else list(path)[::-1]
        if st["kind"] == "chunked":
            # Directed batches can hold (s, t) and (t, s) as distinct
            # queries in different chunks: an exact-orientation match
            # anywhere must win before falling back to the reversed key.
            for want in ((s, t), (t, s)):
                for chunk_state in st["chunks"]:
                    if want in chunk_state["edge_index"]:
                        proxy = BatchResult(
                            distances={k: self.distances[k] for k in chunk_state["edge_index"]},
                            meter=self.meter,
                            method=self.method,
                            num_searches=self.num_searches,
                            _path_state=chunk_state,
                        )
                        return proxy.path(s, t)
            raise KeyError(f"({s}, {t}) was not part of this batch")
        qg: QueryGraph = st["qg"]
        graph = st["graph"]
        # Recover the query edge in its stored orientation.
        key = (s, t) if (s, t) in self.distances else (t, s)
        if key not in self.distances:
            raise KeyError(f"({s}, {t}) was not part of this batch")
        flipped = key != (s, t)
        ks, kt = key
        i, j = st["edge_index"][key]
        if st["kind"] == "multi":
            path = stitch_bidirectional_path(
                graph, st["dist"][i], st["dist"][j], ks, kt
            )
        else:
            rows, covered = st["rows"], st["covered"]
            if i in covered:
                # Row i holds distances from ks (forward orientation).
                path = walk_path(graph, rows[i], ks, kt)
            else:
                # Row j holds distances from kt: over the reverse graph
                # for directed target copies, over the graph itself
                # otherwise; both walk kt -> ks, then flip.
                g_row = (
                    graph.reverse()
                    if graph.directed and qg.direction is not None and qg.direction[j] < 0
                    else graph
                )
                path = walk_path(g_row, rows[j], kt, ks)[::-1]
        return path[::-1] if flipped else path


def solve_batch(
    graph,
    queries,
    *,
    method: str = "multi",
    strategy: SteppingStrategy | None = None,
    strategy_factory=None,
    max_sources: int | None = None,
    budget=None,
    arena=None,
    observer=None,
    certify: bool = False,
    backend: str = "serial",
    workers: int | None = None,
    pool=None,
    shard_deadline: float | None = None,
    hedge=None,
    retry_budget=None,
    **engine_kwargs,
) -> BatchResult:
    """Answer a batch of PPSP queries.

    ``queries`` is a :class:`QueryGraph` or a sequence of (s, t) pairs;
    an empty sequence yields an empty result.  Endpoints are validated
    against the graph before any engine run.  ``strategy_factory`` (a
    zero-argument callable) is required instead of ``strategy`` for
    methods that launch several engine runs, since strategies are
    stateful.

    ``max_sources`` (Multi-BiDS only) bounds concurrent searches: the
    engine's distance table is ``O(n · |V_q|)``, so very large batches
    are processed in query-subsets of at most this many endpoints — the
    space-control strategy of Sec. 4.2 ("process a subset of queries in
    turn").

    ``budget`` (a :class:`repro.robustness.Budget`) is shared across the
    whole batch: one meter covers every engine run, and on exhaustion
    the result degrades gracefully (``exact=False``, current upper
    bounds, ``inf`` for unreached queries).

    ``arena`` (a :class:`repro.perf.BufferArena`) pools the per-search
    distance matrices across the batch's engine runs — methods that
    launch many runs (``plain-bids``, ``sssp-vc``, chunked ``multi``)
    then allocate one buffer per distinct shape instead of one per run.
    The buffers stay leased because ``BatchResult`` path state views
    them; releasing is the caller's job
    (:meth:`repro.perf.WarmEngine.batch` scopes this automatically).

    ``observer`` (a :class:`repro.obs.Observer`) is threaded into every
    engine run this batch launches and receives one ``on_batch``
    notification for the combined result.

    ``certify=True`` attaches a :class:`repro.verify.Certificate` per
    answered pair (``BatchResult.certificates``): witness path plus
    relaxation facts sampled from the settled frontiers, built while the
    solver's dist rows are still alive.  Budget-degraded answers get
    one-sided upper-bound certificates.

    ``backend="process"`` ships the batch to a pool of worker processes
    attached to a shared-memory view of the graph
    (:mod:`repro.parallel.pool`): ``workers`` sets the pool size, or
    pass an existing :class:`~repro.parallel.pool.ProcessPool` as
    ``pool`` to amortize worker startup and graph export across batches.
    The answers — distances, paths, and certificates — are bit-identical
    to ``backend="serial"``; features that are inherently single-process
    (``budget``, ``arena``, ``strategy_factory``, ``max_sources``) are
    rejected with a ``ValueError``.

    ``shard_deadline`` (per-shard wall seconds), ``hedge`` (a
    :class:`~repro.serve.hedging.HedgePolicy` or ``True``), and
    ``retry_budget`` (a :class:`~repro.serve.overload.RetryBudget`)
    arm the process backend's straggler defenses — shard timeouts,
    hedged re-execution, budget-gated backups (see
    :mod:`repro.serve.hedging`).  Because shards are deterministic,
    hedged answers stay bit-identical to serial.  Process backend only.

    Remaining keyword arguments flow into every engine run this batch
    launches (all five solvers) — notably ``kernel=`` selects the
    scatter-min implementation (:mod:`repro.kernels`); with
    ``backend="process"`` pass it as a string impl name so it ships to
    the workers.  Kernel choice never changes answers.
    """
    if method not in BATCH_METHODS:
        raise ValueError(f"unknown batch method {method!r}; options: {BATCH_METHODS}")
    if backend not in ("serial", "process"):
        raise ValueError(f"unknown backend {backend!r}; options: serial, process")
    if not isinstance(queries, QueryGraph):
        queries = list(queries)
        if len(queries) == 0:
            return BatchResult(
                distances={},
                meter=WorkDepthMeter(),
                method=method,
                num_searches=0,
                details={"empty": True},
            )
        qg = QueryGraph(queries)
    else:
        qg = queries
    _validate_endpoints(graph, qg)

    if backend == "process":
        from ..parallel.pool import solve_batch_process  # lazy: pool imports this module

        return solve_batch_process(
            graph,
            qg,
            method=method,
            strategy=strategy,
            strategy_factory=strategy_factory,
            max_sources=max_sources,
            budget=budget,
            arena=arena,
            observer=observer,
            certify=certify,
            workers=workers,
            pool=pool,
            shard_deadline=shard_deadline,
            hedge=hedge,
            retry_budget=retry_budget,
            **engine_kwargs,
        )
    if workers is not None or pool is not None:
        raise ValueError("workers/pool apply to backend='process' only")
    if shard_deadline is not None or hedge is not None or retry_budget is not None:
        raise ValueError(
            "shard_deadline/hedge/retry_budget apply to backend='process' only"
        )
    if strategy_factory is None:
        strategy_factory = (lambda: strategy) if strategy is not None else lambda: None
    if max_sources is not None and method != "multi":
        raise ValueError("max_sources applies to the 'multi' method only")

    bmeter = None
    if budget is not None:
        bmeter = budget if hasattr(budget, "charge") else budget.start()
        engine_kwargs = {**engine_kwargs, "budget": bmeter}
    if arena is not None:
        engine_kwargs = {**engine_kwargs, "arena": arena}
    if observer is not None:
        engine_kwargs = {**engine_kwargs, "observer": observer}
    if certify:
        engine_kwargs = {**engine_kwargs, "track_processed": True}

    if method == "multi":
        if max_sources is not None and qg.num_vertices > max_sources:
            res = _solve_multi_chunked(
                graph, qg, strategy_factory, engine_kwargs, max_sources, certify
            )
        else:
            res = _solve_multi(graph, qg, strategy_factory, engine_kwargs, certify)
    elif method == "plain-bids":
        res = _solve_plain_bids(
            graph, qg, strategy_factory, engine_kwargs, concurrent=False, certify=certify
        )
    elif method == "plain-star-bids":
        res = _solve_plain_bids(
            graph, qg, strategy_factory, engine_kwargs, concurrent=True, certify=certify
        )
    elif method == "sssp-plain":
        sources = _plain_sssp_sources(qg)
        res = _solve_sssp(
            graph, qg, sources, strategy_factory, engine_kwargs, "sssp-plain", certify
        )
    else:
        cover = qg.vertex_cover()
        res = _solve_sssp(
            graph, qg, cover, strategy_factory, engine_kwargs, "sssp-vc", certify
        )

    if bmeter is not None:
        report = bmeter.report()
        res.details["budget_report"] = report
        if report.exhausted:
            res.exact = False
    if observer is not None:
        observer.on_batch(method, res)
    return res


def _validate_endpoints(graph, qg: QueryGraph) -> None:
    """Reject out-of-range query endpoints before any engine work."""
    n = graph.num_vertices
    if n == 0:
        raise ValueError("graph has no vertices; cannot answer queries")
    for s, t in qg.original_pairs:
        for v in (s, t):
            if not 0 <= v < n:
                raise ValueError(
                    f"query ({s}, {t}): vertex {v} out of range for graph "
                    f"{graph.name!r} with {n} vertices"
                )


# ----------------------------------------------------------------------
def _solve_multi(
    graph, qg: QueryGraph, strategy_factory, engine_kwargs, certify=False
) -> BatchResult:
    """Multi-BiDS, decomposed over query-graph connected components.

    Queries in different components of ``G_q`` exchange no shortest-path
    information, but a whole-batch engine run still couples them: the
    stepping threshold is derived from the *global* frontier minimum, so
    an unrelated component alters extraction batching (and thereby
    last-ulp float trajectories) in every other component.  Running each
    component as its own engine run removes that coupling — the runs are
    independent, so the simulated machine executes them concurrently
    (``merge_parallel``) and the process-pool backend can ship them to
    workers while staying bit-identical to this serial path.

    Single-component batches take exactly one engine run, identical to
    the undecomposed solver.
    """
    comps = qg.components()
    if len(comps) == 1:
        return _solve_multi_component(
            graph, comps[0], strategy_factory(), engine_kwargs, certify
        )
    results = [
        _solve_multi_component(graph, sub, strategy_factory(), engine_kwargs, certify)
        for sub in comps
    ]
    distances: dict[tuple[int, int], float] = {}
    certs: dict | None = {} if certify else None
    for res in results:
        distances.update(res.distances)
        if certs is not None and res.certificates:
            certs.update(res.certificates)
    combined = WorkDepthMeter()
    combined.merge_parallel([res.meter for res in results])
    return BatchResult(
        distances=distances,
        meter=combined,
        method="multi",
        num_searches=sum(res.num_searches for res in results),
        exact=all(res.exact for res in results),
        details={
            "components": len(comps),
            "steps": sum(res.details["steps"] for res in results),
            "relaxations": sum(res.details["relaxations"] for res in results),
        },
        certificates=certs,
        _path_state={
            "kind": "chunked",
            "chunks": [res._path_state for res in results],
        },
    )


def _solve_multi_component(
    graph, qg: QueryGraph, strategy, engine_kwargs, certify=False
) -> BatchResult:
    """One Multi-BiDS engine run over a (single-component) query graph."""
    policy = MultiPPSP(qg)
    res = run_policy(graph, policy, strategy=strategy, **engine_kwargs)
    certs = None
    if certify:
        from ..verify import build_certificate  # lazy: verify imports obs

        exact = not res.exhausted
        pd = res.processed_dist
        certs = {}
        for key, (i, j) in _edge_index(qg).items():
            s, t = key
            # Row j mirrors BatchResult.path: the target copy's search,
            # traversing the reverse orientation when the query graph
            # marked it as a backward copy (directed Sec. 4.4 split).
            rev_j = bool(
                graph.directed and qg.direction is not None and qg.direction[j] < 0
            )
            certs[key] = build_certificate(
                graph, s, t, "multi", res.answer[key], exact,
                dist_forward=res.dist[i],
                dist_backward=res.dist[j],
                backward_reversed=rev_j,
                processed_forward=None if pd is None else pd[i],
                processed_backward=None if pd is None else pd[j],
                mu=res.answer[key] if exact else None,
            )
    return BatchResult(
        distances=res.answer,
        meter=res.meter,
        method="multi",
        num_searches=qg.num_vertices,
        exact=not res.exhausted,
        details={"steps": res.steps, "relaxations": res.relaxations},
        certificates=certs,
        _path_state={
            "kind": "multi",
            "graph": graph,
            "qg": qg,
            "dist": res.dist,
            "edge_index": _edge_index(qg),
        },
    )


def _edge_index(qg: QueryGraph) -> dict[tuple[int, int], tuple[int, int]]:
    """Map stored (s, t) answer keys to their query-graph edge (i, j)."""
    verts = qg.vertices
    return {
        (int(verts[i]), int(verts[j])): (i, j) for i, j in qg.edges
    }


def _solve_multi_chunked(
    graph, qg: QueryGraph, strategy_factory, engine_kwargs, max_sources: int, certify=False
) -> BatchResult:
    """Multi-BiDS over query subsets of bounded endpoint count.

    Edges are greedily packed into chunks whose union of endpoints stays
    within ``max_sources`` (each chunk still shares sources internally),
    and the chunks run one after another.
    """
    if max_sources < 2:
        raise ValueError("max_sources must be at least 2 (one query)")
    verts = qg.vertices
    chunks: list[list[tuple[int, int]]] = []
    chunk: list[tuple[int, int]] = []
    endpoints: set[int] = set()
    for i, j in qg.edges:
        pair = (int(verts[i]), int(verts[j]))
        added = {pair[0], pair[1]} - endpoints
        if chunk and len(endpoints) + len(added) > max_sources:
            chunks.append(chunk)
            chunk, endpoints = [], set()
        chunk.append(pair)
        endpoints.update(pair)
    if chunk:
        chunks.append(chunk)

    distances: dict[tuple[int, int], float] = {}
    combined = WorkDepthMeter()
    searches = 0
    exact = True
    chunk_states: list[dict] = []
    certs: dict | None = {} if certify else None
    for pairs in chunks:
        sub = QueryGraph(pairs, directed=qg.directed)
        res = _solve_multi(graph, sub, strategy_factory, engine_kwargs, certify)
        distances.update(res.distances)
        combined.merge(res.meter)
        searches += res.num_searches
        exact = exact and res.exact
        # A multi-component chunk returns a nested chunked state; keep
        # the stored list flat so path() lookup stays one level deep.
        if res._path_state["kind"] == "chunked":
            chunk_states.extend(res._path_state["chunks"])
        else:
            chunk_states.append(res._path_state)
        if certs is not None and res.certificates:
            certs.update(res.certificates)
    return BatchResult(
        distances=distances,
        meter=combined,
        method="multi",
        num_searches=searches,
        exact=exact,
        details={"chunks": len(chunks), "max_sources": max_sources},
        certificates=certs,
        _path_state={"kind": "chunked", "chunks": chunk_states},
    )


def _solve_plain_bids(
    graph, qg: QueryGraph, strategy_factory, engine_kwargs, *, concurrent: bool, certify=False
) -> BatchResult:
    distances: dict[tuple[int, int], float] = {}
    meters: list[WorkDepthMeter] = []
    verts = qg.vertices
    exact = True
    certs: dict | None = {} if certify else None
    if certify:
        from ..verify import certificate_for_run  # lazy: verify imports obs
    for i, j in qg.edges:
        s, t = int(verts[i]), int(verts[j])
        res = run_policy(graph, BiDS(s, t), strategy=strategy_factory(), **engine_kwargs)
        distances[(s, t)] = res.answer
        meters.append(res.meter)
        exact = exact and not res.exhausted
        if certs is not None:
            # Built per run, while this run's dist rows are still alive.
            certs[(s, t)] = certificate_for_run(
                graph, s, t, "bids", float(res.answer), not res.exhausted, res
            )
    combined = WorkDepthMeter()
    if concurrent:
        combined.merge_parallel(meters)
    else:
        for m in meters:
            combined.merge(m)
    return BatchResult(
        distances=distances,
        meter=combined,
        method="plain-star-bids" if concurrent else "plain-bids",
        num_searches=2 * qg.num_edges,
        exact=exact,
        certificates=certs,
    )


def _plain_sssp_sources(qg: QueryGraph) -> np.ndarray:
    """All distinct *sources* of the original pairs (the naive strategy)."""
    src = sorted({s for s, _ in qg.original_pairs})
    return np.array([qg.index_of(s) for s in src], dtype=np.int64)


def _solve_sssp(
    graph, qg: QueryGraph, source_indices: np.ndarray, strategy_factory, engine_kwargs,
    name: str, certify=False,
) -> BatchResult:
    """Run full SSSP from the given query-graph vertices, combine answers.

    Every query must have at least one endpoint among ``source_indices``
    (guaranteed for a vertex cover; for ``sssp-plain`` by construction).
    """
    verts = qg.vertices
    rows: dict[int, np.ndarray] = {}
    prows: dict[int, np.ndarray] = {}
    row_exact: dict[int, bool] = {}
    row_reversed: dict[int, bool] = {}
    combined = WorkDepthMeter()
    exact = True
    for qi in source_indices:
        v = int(verts[qi])
        reverse = (
            graph.directed
            and qg.direction is not None
            and qg.direction[qi] < 0
        )
        g = graph.reverse() if reverse else graph
        res = run_policy(g, SsspPolicy(v), strategy=strategy_factory(), **engine_kwargs)
        rows[int(qi)] = res.distances_from(0)
        combined.merge(res.meter)
        exact = exact and not res.exhausted
        row_exact[int(qi)] = not res.exhausted
        row_reversed[int(qi)] = reverse
        if certify and res.processed_dist is not None:
            prows[int(qi)] = res.processed_dist[0]
    covered = set(int(q) for q in source_indices)
    distances: dict[tuple[int, int], float] = {}
    certs: dict | None = {} if certify else None
    for i, j in qg.edges:
        s, t = int(verts[i]), int(verts[j])
        if s == t:
            # Self-queries are their own answer and need no covering row.
            distances[(s, t)] = 0.0
        elif i in covered:
            distances[(s, t)] = float(rows[i][t])
        elif j in covered:
            distances[(s, t)] = float(rows[j][s])
        else:
            raise ValueError(
                f"query ({s}, {t}) not covered by SSSP sources; "
                f"method {name!r} needs a covering source set"
            )
        if certs is not None:
            certs[(s, t)] = _sssp_certificate(
                graph, qg, name, s, t, i, j, distances[(s, t)],
                rows, prows, covered, row_exact, row_reversed,
            )
    return BatchResult(
        distances=distances,
        meter=combined,
        method=name,
        num_searches=len(source_indices),
        exact=exact,
        certificates=certs,
        _path_state={
            "kind": "sssp",
            "graph": graph,
            "qg": qg,
            "rows": rows,
            "covered": covered,
            "edge_index": _edge_index(qg),
        },
    )


def _sssp_certificate(
    graph, qg, name, s, t, i, j, distance, rows, prows, covered, row_exact, row_reversed
):
    """Certificate for one query answered by a covering SSSP row.

    Mirrors :meth:`BatchResult.path` orientation logic: a query covered
    by its target endpoint walks the target's row (over the reverse
    orientation for directed target copies) and flips the result.
    """
    from ..core.paths import PathError, walk_path
    from ..verify import build_certificate

    if s == t:
        return build_certificate(graph, s, t, name, 0.0, True)
    if i in covered:
        return build_certificate(
            graph, s, t, name, distance, row_exact[i],
            dist_forward=rows[i],
            processed_forward=prows.get(i),
        )
    rev = bool(row_reversed[j])
    g_row = graph.reverse() if (graph.directed and rev) else graph
    path = None
    if np.isfinite(distance):
        try:
            path = walk_path(g_row, rows[j], t, s)[::-1]
        except (PathError, ValueError, IndexError):
            path = None
    return build_certificate(
        graph, s, t, name, distance, row_exact[j],
        dist_backward=rows[j],
        backward_reversed=rev,
        processed_backward=prows.get(j),
        path=path,
    )
