"""Per-step execution traces of the PPSP engine.

A :class:`StepTrace` records, for every engine step, the quantities the
paper's analysis reasons about: the threshold θ, frontier/extracted/
pruned/relaxed sizes, and the current μ.  Attach one via
``run_policy(..., trace=StepTrace())`` to see *why* a query was fast or
slow — e.g. watch μ drop and the pruned count spike the moment the
searches meet.

The engine reports through the narrow :meth:`StepTrace.record` hook, so
tracing costs nothing when absent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

__all__ = ["StepRecord", "StepTrace"]


@dataclass(frozen=True)
class StepRecord:
    """One engine step."""

    step: int
    theta: float
    frontier_size: int
    extracted: int
    pruned: int
    relaxed_edges: int
    improved: int
    mu: float

    def as_dict(self) -> dict:
        return {
            "step": self.step,
            "theta": self.theta,
            "frontier_size": self.frontier_size,
            "extracted": self.extracted,
            "pruned": self.pruned,
            "relaxed_edges": self.relaxed_edges,
            "improved": self.improved,
            "mu": self.mu,
        }


@dataclass
class StepTrace:
    """Collects :class:`StepRecord` rows for one engine run."""

    records: list[StepRecord] = field(default_factory=list)

    def record(self, **kwargs) -> None:
        self.records.append(StepRecord(**kwargs))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # -- Analysis helpers ------------------------------------------------
    def mu_settled_step(self) -> int | None:
        """First step whose μ equals the final μ (when the answer was
        effectively found; later steps only *verify* it)."""
        if not self.records:
            return None
        final = self.records[-1].mu
        if not np.isfinite(final):
            return None
        for rec in self.records:
            if np.isclose(rec.mu, final, rtol=1e-12, atol=1e-12):
                return rec.step
        return None

    def total_pruned(self) -> int:
        return sum(r.pruned for r in self.records)

    def peak_frontier(self) -> int:
        return max((r.frontier_size for r in self.records), default=0)

    def summary(self) -> dict:
        return {
            "steps": len(self.records),
            "peak_frontier": self.peak_frontier(),
            "total_pruned": self.total_pruned(),
            "mu_settled_step": self.mu_settled_step(),
            "final_mu": self.records[-1].mu if self.records else None,
        }

    # -- Serialization ---------------------------------------------------
    def to_dicts(self) -> list[dict]:
        """All records as plain dicts (non-finite floats kept as floats)."""
        return [r.as_dict() for r in self.records]

    def to_json(self, *, indent: int | None = None) -> str:
        """The full trace as JSON: ``{"summary": ..., "records": [...]}``.

        Non-finite floats (θ = ∞ before any path is found, μ = NaN for
        policies without a bound) are encoded as the strings ``"inf"``
        / ``"-inf"`` / ``"nan"`` so the output is strict JSON that any
        consumer can parse; :meth:`from_json` restores them.
        """
        payload = {
            "summary": _encode(self.summary()),
            "records": [_encode(r.as_dict()) for r in self.records],
        }
        return json.dumps(payload, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "StepTrace":
        """Rebuild a trace from :meth:`to_json` output (golden fixtures)."""
        payload = json.loads(text)
        trace = cls()
        for rec in payload["records"]:
            trace.record(**_decode(rec))
        return trace

    def render(self, *, max_rows: int = 40) -> str:
        """A fixed-width table of the trace (head + tail when long)."""
        header = f"{'step':>5} {'theta':>12} {'front':>7} {'extr':>6} {'prune':>6} {'edges':>8} {'impr':>6} {'mu':>12}"
        rows = [header, "-" * len(header)]
        recs = self.records
        shown = recs if len(recs) <= max_rows else recs[: max_rows // 2] + recs[-max_rows // 2 :]
        last_step = None
        for r in shown:
            if last_step is not None and r.step != last_step + 1:
                rows.append("  ...")
            last_step = r.step
            mu = f"{r.mu:.4g}" if np.isfinite(r.mu) else "inf"
            theta = f"{r.theta:.4g}" if np.isfinite(r.theta) else "inf"
            rows.append(
                f"{r.step:>5} {theta:>12} {r.frontier_size:>7} {r.extracted:>6} "
                f"{r.pruned:>6} {r.relaxed_edges:>8} {r.improved:>6} {mu:>12}"
            )
        return "\n".join(rows)


_SPECIAL = {"inf": np.inf, "-inf": -np.inf, "nan": np.nan}


def _encode(d: dict) -> dict:
    """Replace non-JSON floats with sentinel strings."""
    out = {}
    for key, value in d.items():
        if isinstance(value, float) and not np.isfinite(value):
            value = "nan" if np.isnan(value) else ("inf" if value > 0 else "-inf")
        out[key] = value
    return out


def _decode(d: dict) -> dict:
    """Inverse of :func:`_encode`."""
    return {k: _SPECIAL[v] if isinstance(v, str) and v in _SPECIAL else v
            for k, v in d.items()}
