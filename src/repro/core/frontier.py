"""Frontier data structures with sparse-dense switching (paper App. B).

A frontier holds *elements*: composite ids ``e = source_index * n + v``
encoding vertex ``v`` searched from the ``i``-th source (the paper's
``v^(i)`` copies).  Two representations mirror the C++ implementation:

* **sparse** — a deduplicated id array (the parallel hash bag), cheap
  when the frontier is a small fraction of the graph;
* **dense** — a boolean membership array over all ``k*n`` element slots,
  cheaper per element once the frontier is a constant fraction of ``n``
  because flag writes beat hash-bag inserts and are cache friendly.

``mode="auto"`` switches per step on a size threshold, as the paper's
sparse-dense optimization does.

Dense mode maintains its cardinality incrementally (``_count``): the
engine asks for ``len(frontier)`` several times per step (loop guard,
switch hysteresis), and summing the whole membership array each time is
an O(k·n) tax the add path can pay once, in O(batch).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Frontier"]


class Frontier:
    """Set of composite element ids with batched add / threshold-extract."""

    #: auto mode goes dense above this fraction of capacity.
    DENSE_FRACTION = 0.05
    #: ... and back to sparse below this fraction (hysteresis).
    SPARSE_FRACTION = 0.02

    def __init__(
        self, capacity: int, mode: str = "auto", *, arena=None, observer=None
    ) -> None:
        if mode not in ("auto", "sparse", "dense"):
            raise ValueError(f"unknown frontier mode {mode!r}")
        self.capacity = int(capacity)
        self.mode = mode
        self._arena = arena
        self._observer = observer
        self._sparse: np.ndarray = np.empty(0, dtype=np.int64)
        self._dense: np.ndarray | None = None
        #: dense-mode cardinality, updated incrementally by add/replace.
        self._count = 0
        self._use_dense = mode == "dense"
        if self._use_dense:
            self._dense = self._new_dense()

    def _new_dense(self) -> np.ndarray:
        """A zeroed membership array, pooled when an arena is attached."""
        if self._arena is not None:
            return self._arena.acquire(self.capacity, dtype=bool, fill=False)
        return np.zeros(self.capacity, dtype=bool)

    def _drop_dense(self) -> None:
        if self._arena is not None and self._dense is not None:
            self._arena.release(self._dense)
        self._dense = None

    def dispose(self) -> None:
        """Return any pooled storage to the arena (end of an engine run)."""
        if self._use_dense:
            self._sparse = np.flatnonzero(self._dense) if len(self) else np.empty(0, dtype=np.int64)
            self._use_dense = False
        self._drop_dense()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if self._use_dense:
            return self._count
        return len(self._sparse)

    @property
    def is_dense(self) -> bool:
        return self._use_dense

    def ids(self) -> np.ndarray:
        """Current element ids as a sorted array (a copy)."""
        if self._use_dense:
            return np.flatnonzero(self._dense)
        return self._sparse.copy()

    # ------------------------------------------------------------------
    def add(self, eids: np.ndarray) -> None:
        """Insert a batch of element ids (duplicates are collapsed)."""
        eids = np.asarray(eids, dtype=np.int64)
        if len(eids) == 0:
            return
        if self._use_dense:
            pre = self._dense[eids]
            if not pre.all():
                fresh = eids[~pre]
                self._dense[fresh] = True
                # The engine feeds sorted-unique batches; count them
                # directly, falling back to a dedup for arbitrary input.
                if len(fresh) == 1 or (np.diff(fresh) > 0).all():
                    self._count += len(fresh)
                else:
                    self._count += len(np.unique(fresh))
        else:
            sp = self._sparse
            if len(eids) > 1 and not (np.diff(eids) > 0).all():
                eids = np.unique(eids)
            if len(sp) == 0:
                self._sparse = eids.copy()
            else:
                # _sparse is always sorted-unique: a searchsorted merge
                # inserts only the genuinely new ids in one O(n + b log n)
                # pass, replacing the old full unique(concat) re-sort.
                pos = np.searchsorted(sp, eids)
                in_range = pos < len(sp)
                present = np.zeros(len(eids), dtype=bool)
                present[in_range] = sp[pos[in_range]] == eids[in_range]
                if not present.all():
                    new = ~present
                    self._sparse = np.insert(sp, pos[new], eids[new])
        self._maybe_switch()

    def replace(self, eids: np.ndarray, *, assume_sorted: bool = False) -> None:
        """Reset contents to exactly ``eids`` (assumed deduplicated).

        ``assume_sorted=True`` skips the sort — valid whenever ``eids``
        is a subsequence of a previous ``ids()`` result, as in the
        engine's extract/defer split.
        """
        eids = np.asarray(eids, dtype=np.int64)
        if self._use_dense:
            self._dense[:] = False
            self._dense[eids] = True
            self._count = len(eids)
        else:
            self._sparse = eids if assume_sorted else np.sort(eids)
        self._maybe_switch()

    def extract(self, priorities_of, threshold: float) -> np.ndarray:
        """Remove and return all elements with priority <= ``threshold``.

        ``priorities_of`` maps an id array to its priority array (tentative
        distance, or distance+heuristic for A*); elements above the
        threshold stay for later steps — the ``F.Extract(θ)`` of Alg. 2.
        """
        current = self.ids()
        if len(current) == 0:
            return current
        prio = priorities_of(current)
        take = prio <= threshold
        extracted = current[take]
        self.replace(current[~take])
        return extracted

    def clear(self) -> None:
        self.replace(np.empty(0, dtype=np.int64))

    # ------------------------------------------------------------------
    def _maybe_switch(self) -> None:
        if self.mode != "auto":
            return
        size = len(self)
        if not self._use_dense and size > self.DENSE_FRACTION * self.capacity:
            dense = self._new_dense()
            dense[self._sparse] = True
            self._dense = dense
            self._sparse = np.empty(0, dtype=np.int64)
            self._use_dense = True
            self._count = size
            if self._observer is not None:
                self._observer.on_frontier_switch(True, size)
        elif self._use_dense and size < self.SPARSE_FRACTION * self.capacity:
            self._sparse = np.flatnonzero(self._dense)
            self._drop_dense()
            self._use_dense = False
            if self._observer is not None:
                self._observer.on_frontier_switch(False, size)
