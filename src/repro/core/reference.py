"""A literal, non-vectorized transcription of Algorithm 2.

The production engine (:mod:`repro.core.engine`) executes the paper's
framework as batched numpy kernels; this module executes it as the
paper writes it — explicit loops, one ``write_min`` per edge — to serve
as a *differential-testing oracle for the framework itself*: both
implementations consume the same :class:`~repro.core.policies.Policy`
objects and must produce identical answers (and identical settled
distances) on every input.  Sequential Dijkstra validates the answers;
this engine validates the *semantics* — that the vectorized batching,
pruning order, and μ updates implement the same algorithm.

Deliberately simple and slow; use only in tests and for studying the
algorithm.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["run_policy_reference"]


def run_policy_reference(graph, policy, *, strategy=None, max_steps: int | None = None):
    """Execute Alg. 2 with Python-level loops; returns (answer, dist).

    ``dist`` is the ``(k, n)`` matrix of tentative distances at
    termination, exactly like the production engine's ``RunResult.dist``.
    """
    from .stepping import default_strategy

    n = graph.num_vertices
    k = policy.num_sources
    dist = np.full(k * n, math.inf)
    strategy = strategy if strategy is not None else default_strategy(graph)
    strategy.reset()

    seeds, seed_vals = policy.bind(graph, dist)
    seeds = np.asarray(seeds, dtype=np.int64)
    dist[seeds] = np.asarray(seed_vals, dtype=float)
    policy.on_relax(np.sort(seeds), dist)

    frontier: set[int] = set(int(e) for e in seeds)
    graphs = [policy.source_graph(i) for i in range(k)]
    steps = 0

    while frontier:
        current = np.array(sorted(frontier), dtype=np.int64)
        if policy.finished(current, dist):
            break
        if max_steps is not None and steps >= max_steps:
            break
        prio = policy.priority(current, dist)
        theta = strategy.threshold(prio)

        extracted = [int(e) for e, p in zip(current, prio) if p <= theta]
        frontier.difference_update(extracted)

        changed: set[int] = set()
        for e in extracted:
            # Line 6: Prune(u)
            if bool(policy.prune_mask(np.array([e]), dist)[0]):
                continue
            i, v = divmod(e, n)
            g = graphs[i]
            # Lines 7-8: relax each neighbor with write_min.
            for off in range(g.indptr[v], g.indptr[v + 1]):
                u = int(g.indices[off])
                te = i * n + u
                nd = dist[e] + g.weights[off]
                if nd < dist[te]:
                    dist[te] = nd
                    changed.add(te)

        if changed:
            changed_arr = np.array(sorted(changed), dtype=np.int64)
            # Line 9: UpdateDistance on every successful relaxation.
            policy.on_relax(changed_arr, dist)
            # Line 10: re-check Prune before adding to F.
            keep = ~policy.prune_mask(changed_arr, dist)
            frontier.update(int(e) for e in changed_arr[keep])
        steps += 1

    return policy.result(), dist.reshape(k, n)
