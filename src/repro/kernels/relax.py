"""Fused CSR gather for relaxation waves.

The engine's old gather built the per-edge proposal arrays with
``expand_ranges`` plus two ``np.repeat`` passes and a per-step
``indptr[v+1] - indptr[v]`` degree gather (``engine.py`` pre-kernels).
:func:`gather_relax` fuses the same computation into fewer passes:

* out-degrees come from the graph's cached :meth:`Graph.out_degrees`
  array (one gather instead of two ``indptr`` gathers + a subtract);
* the edge-id expansion and the source-index expansion share one
  segment-boundary computation (two in-place cumsums over pooled
  scratch instead of ``expand_ranges``'s fresh allocations plus two
  ``np.repeat``);
* proposal targets and values are accumulated in-place into scratch
  buffers leased from the kernel's :class:`~repro.kernels.scatter.
  ScratchPool`, so steady-state waves allocate only the two unavoidable
  fancy-gather temporaries (``indices[edge_idx]``/``weights[edge_idx]``).

The produced floats are element-for-element identical to the old path:
the same additions happen in the same order per element, only the
intermediate storage differs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gather_relax"]

_EMPTY_I8 = np.empty(0, dtype=np.int64)
_EMPTY_F8 = np.empty(0, dtype=np.float64)


def gather_relax(graph, eids, v, src_off, dist, *, scratch):
    """Expand the out-edges of ``eids`` into per-edge relaxation proposals.

    Parameters mirror the engine's batch state: ``eids`` are composite
    element ids, ``v = eids % n`` their vertices, ``src_off = eids - v``
    their source-row offsets, ``dist`` the flat distance array.

    Returns ``(te, new_d, edge_count)``: composite target id and
    proposed distance per touched edge.  ``te``/``new_d`` are views into
    ``scratch`` — valid until the next gather on the same kernel, which
    is fine because the engine consumes them within the step.
    """
    counts = graph.out_degrees()[v]
    starts = graph.indptr[v]
    nz = counts > 0
    if not nz.all():
        eids, src_off = eids[nz], src_off[nz]
        counts, starts = counts[nz], starts[nz]
    k = len(counts)
    if k == 0:
        return _EMPTY_I8, _EMPTY_F8, 0
    total = int(counts.sum())

    # First output slot of each source's edge segment.
    pos = np.empty(k, dtype=np.int64)
    pos[0] = 0
    np.cumsum(counts[:-1], out=pos[1:])

    # Edge ids by the delta trick: ones everywhere, segment-start deltas
    # at the boundaries, one in-place cumsum.
    edge_idx = scratch.take("edge_idx", total, np.int64)
    edge_idx[:] = 1
    edge_idx[pos] = starts
    edge_idx[pos[1:]] -= starts[:-1] + counts[:-1] - 1
    np.cumsum(edge_idx, out=edge_idx)

    # Source index per edge: boundary markers, one in-place cumsum.
    src_idx = scratch.take("src_idx", total, np.int64)
    src_idx[:] = 0
    src_idx[pos[1:]] = 1
    np.cumsum(src_idx, out=src_idx)

    te = scratch.take("te", total, np.int64)
    np.take(src_off, src_idx, out=te)
    te += graph.indices[edge_idx]

    new_d = scratch.take("new_d", total, np.float64)
    np.take(dist[eids], src_idx, out=new_d)
    new_d += graph.weights[edge_idx]
    return te, new_d, total
