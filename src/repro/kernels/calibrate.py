"""One-shot calibrations: the scatter crossover and the paper's Δ tuning.

Two measured quantities feed the kernel layer:

* :func:`scatter_threshold` — the batch size above which
  ``sort_reduceat`` beats ``ufunc_at`` on *this* machine, measured once
  per process by a seeded microbenchmark over synthetic duplicate-heavy
  batches.  ``REPRO_KERNEL_THRESHOLD`` pins it (skipping the
  microbenchmark entirely); ``REPRO_KERNEL_CALIBRATE=0`` falls back to
  a conservative default.  Dispatch never affects answers — both impls
  are bit-identical — so a machine-dependent threshold is safe.
* :func:`calibrate_delta` — the paper's Sec. 6.1 doubling procedure for
  the Δ*-stepping bucket width: start small, run SSSP, double Δ until
  the running time stops improving.  Cached by
  :meth:`Graph.fingerprint`, so repeated engines over the same graph
  pay the tuning runs once per process.
"""

from __future__ import annotations

import os
import time

import numpy as np

__all__ = [
    "DEFAULT_SCATTER_THRESHOLD",
    "scatter_threshold",
    "calibrate_scatter",
    "calibrate_delta",
]

#: fallback auto-dispatch crossover when calibration is disabled — the
#: low end of the crossover band observed across dev machines.
DEFAULT_SCATTER_THRESHOLD = 512

#: sort_reduceat must beat ufunc_at by this factor at a probe size for
#: the size to count as past the crossover (guards against noise).
_WIN_MARGIN = 1.05

_state: dict = {"threshold": None, "profile": None}


def scatter_threshold() -> int:
    """The process-wide auto-dispatch crossover batch size.

    Resolution order: ``REPRO_KERNEL_THRESHOLD`` (explicit pin) →
    cached calibration result → run :func:`calibrate_scatter` (unless
    ``REPRO_KERNEL_CALIBRATE`` is ``0``/``no``/``false``, which takes
    :data:`DEFAULT_SCATTER_THRESHOLD`).
    """
    env = os.environ.get("REPRO_KERNEL_THRESHOLD")
    if env:
        return max(1, int(env))
    if _state["threshold"] is None:
        if os.environ.get("REPRO_KERNEL_CALIBRATE", "1").lower() in ("0", "no", "false"):
            _state["threshold"] = DEFAULT_SCATTER_THRESHOLD
        else:
            _state["threshold"] = calibrate_scatter()["threshold"]
    return _state["threshold"]


def calibrate_scatter(
    *,
    seed: int = 1729,
    sizes: tuple = (128, 256, 512, 1024, 4096),
    dup_ratio: int = 4,
    repeats: int = 5,
) -> dict:
    """Measure the scatter-min crossover on synthetic batches (cached).

    Each probe batch has ``size`` proposals over ``size // dup_ratio``
    distinct targets — the duplicate density of a mid-search relaxation
    wave.  Both impls run interleaved, best-of-``repeats``; the chosen
    threshold is the smallest probe size where ``sort_reduceat`` wins by
    :data:`_WIN_MARGIN`, provided every larger probe also wins (a
    non-monotone win is treated as noise).  If the sort path never wins,
    the threshold is pushed past every probe so ``auto`` stays on the
    ufunc loop.
    """
    if _state["profile"] is not None:
        return _state["profile"]
    from .scatter import _scatter_sort_reduceat, _scatter_ufunc_at

    rng = np.random.default_rng(seed)
    timings: dict[int, dict[str, float]] = {}
    for size in sizes:
        num_targets = max(1, size // dup_ratio)
        targets = rng.integers(0, num_targets, size=size).astype(np.int64)
        values = rng.random(size)
        base = rng.random(num_targets)
        best = {"ufunc_at": float("inf"), "sort_reduceat": float("inf")}
        for _ in range(repeats):
            for name, fn in (
                ("ufunc_at", _scatter_ufunc_at),
                ("sort_reduceat", _scatter_sort_reduceat),
            ):
                dist = base.copy()
                t0 = time.perf_counter()
                fn(dist, targets, values)
                best[name] = min(best[name], time.perf_counter() - t0)
        timings[size] = best

    threshold = None
    for i, size in enumerate(sizes):
        wins = all(
            timings[s]["ufunc_at"] >= _WIN_MARGIN * timings[s]["sort_reduceat"]
            for s in sizes[i:]
        )
        if wins:
            threshold = size
            break
    if threshold is None:
        threshold = int(sizes[-1]) * 4  # sort never won: keep auto on ufunc
    profile = {
        "threshold": int(threshold),
        "seed": seed,
        "dup_ratio": dup_ratio,
        "timings": {
            str(size): dict(best) for size, best in timings.items()
        },
    }
    _state["profile"] = profile
    _state["threshold"] = profile["threshold"]
    return profile


# ----------------------------------------------------------------------
# Δ tuning (paper Sec. 6.1)
# ----------------------------------------------------------------------
_DELTA_CACHE: dict[str, float] = {}


def calibrate_delta(graph, *, source: int | None = None, doublings: int = 10) -> float:
    """Pick Δ by the paper's doubling procedure (Sec. 6.1), cached.

    Starting from ``mean_weight / 4``, run SSSP and double Δ until the
    running time converges to its minimum (three stale doublings stop
    the search).  The result is cached by :meth:`Graph.fingerprint`, so
    two loads of the same graph share one tuning pass per process.
    """
    if graph.num_edges == 0:
        return 1.0
    key = graph.fingerprint()
    if key in _DELTA_CACHE:
        return _DELTA_CACHE[key]
    # Lazy core imports: the engine imports this package at module level.
    from ..core.engine import run_policy
    from ..core.policies import SsspPolicy
    from ..core.stepping import DeltaStepping

    if source is None:
        source = int(np.argmax(graph.out_degrees()))  # a well-connected seed
    delta = max(float(graph.weights.mean()) / 4.0, 1e-9)
    best_delta, best_time = delta, float("inf")
    stale = 0
    for _ in range(doublings):
        t0 = time.perf_counter()
        run_policy(graph, SsspPolicy(source), strategy=DeltaStepping(delta))
        elapsed = time.perf_counter() - t0
        if elapsed < best_time * 0.97:
            best_time, best_delta = elapsed, delta
            stale = 0
        else:
            stale += 1
            if stale >= 3:
                break
        delta *= 2.0
    _DELTA_CACHE[key] = best_delta
    return best_delta
