"""Scatter-min kernels: the ``write_min`` inner loop of every relaxation.

A relaxation wave ends with a batched *scatter-min*: lower
``dist[targets]`` to ``values`` where several proposals may hit the same
target, then hand the set of touched targets back to the engine so it can
test which ones actually improved.  Three interchangeable implementations
answer that contract, all bit-identical (float64 ``min`` is exact,
order-independent, and the library admits no NaN weights and no negative
distances, so there is no ``-0.0``/NaN tie to break):

``ufunc_at``
    ``np.minimum.at`` — the unbuffered ufunc loop (the original engine
    behavior, kept as the reference).  No setup cost, but the inner loop
    runs element-at-a-time in C with full ufunc dispatch per element,
    which dominates the profile on large waves.
``sort_reduceat``
    argsort the targets, take per-segment minima with
    ``np.minimum.reduceat``, and apply them with one vectorized
    ``np.minimum`` write.  One O(k log k) sort buys fully vectorized
    segment reduction — and the sorted unique target array the engine
    needs next comes out for free (the ``ufunc_at`` path pays a second
    sort inside ``np.unique``).
``auto``
    per-call dispatch between the two on batch size: small waves keep
    the setup-free ufunc loop, large waves take the sort.  The crossover
    is measured once per process by a seeded calibration microbenchmark
    (:func:`repro.kernels.calibrate.scatter_threshold`), overridable via
    ``REPRO_KERNEL_THRESHOLD``.

The returned array is the **sorted, deduplicated** target ids — exactly
``np.unique(targets)`` — which is the engine's changed-candidate set.

Kernels are small stateful objects (one per engine): they carry the
scratch-buffer pool used by :func:`repro.kernels.relax.gather_relax` and
per-implementation invocation/element/dispatch counters that the engine
folds into :mod:`repro.obs` metrics at run end.  Select one with the
``kernel=`` engine argument, the ``REPRO_KERNEL`` environment variable,
or the ``--kernel`` CLI flag; see ``docs/perf.md``.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["KERNEL_IMPLS", "Kernel", "ScratchPool", "get_kernel"]

#: selectable implementation names (``auto`` dispatches between the rest).
KERNEL_IMPLS = ("ufunc_at", "sort_reduceat", "auto")
#: the concrete (non-dispatching) implementations.
CONCRETE_IMPLS = ("ufunc_at", "sort_reduceat")

_EMPTY_I8 = np.empty(0, dtype=np.int64)


def _scatter_ufunc_at(dist: np.ndarray, targets: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Reference scatter-min: unbuffered ``np.minimum.at``."""
    if len(targets) == 0:
        return _EMPTY_I8
    np.minimum.at(dist, targets, values)
    return np.unique(targets)


def _scatter_sort_reduceat(
    dist: np.ndarray, targets: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """Segmented scatter-min: argsort + ``minimum.reduceat`` + one write."""
    k = len(targets)
    if k == 0:
        return _EMPTY_I8
    if k == 1:
        t = targets[:1].astype(np.int64, copy=True)
        np.minimum.at(dist, t, values)
        return t
    order = np.argsort(targets)
    st = targets[order]
    sv = values[order]
    # Segment starts: position 0 plus every index where the target changes.
    seg_starts = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.flatnonzero(st[1:] != st[:-1]) + 1)
    )
    mins = np.minimum.reduceat(sv, seg_starts)
    uniq = st[seg_starts]
    dist[uniq] = np.minimum(dist[uniq], mins)
    return uniq


_IMPL_FNS = {
    "ufunc_at": _scatter_ufunc_at,
    "sort_reduceat": _scatter_sort_reduceat,
}


class ScratchPool:
    """Reusable scratch buffers keyed by ``(tag, dtype)``.

    Relaxation waves vary in size step to step, so the exact-shape free
    lists of :class:`repro.perf.BufferArena` would miss on almost every
    lease.  This pool instead keeps one power-of-two-capacity buffer per
    ``(tag, dtype)`` slot and hands out length-``size`` views — the
    steady state performs zero allocations once the high-water mark is
    reached.  Views are valid only until the same tag is taken again;
    callers must consume them within the step (the engine does).
    """

    __slots__ = ("_bufs",)

    #: never allocate below this capacity — avoids regrow churn on the
    #: small waves that open and close every search.
    MIN_CAPACITY = 1024

    def __init__(self) -> None:
        self._bufs: dict[tuple[str, str], np.ndarray] = {}

    def take(self, tag: str, size: int, dtype) -> np.ndarray:
        """A length-``size`` view of the pooled buffer for ``tag``."""
        key = (tag, np.dtype(dtype).str)
        buf = self._bufs.get(key)
        if buf is None or buf.shape[0] < size:
            cap = self.MIN_CAPACITY
            while cap < size:
                cap <<= 1
            buf = np.empty(cap, dtype=dtype)
            self._bufs[key] = buf
        return buf[:size]

    def nbytes(self) -> int:
        """Total bytes currently pooled (diagnostics)."""
        return sum(b.nbytes for b in self._bufs.values())


class Kernel:
    """One configured scatter-min kernel with per-impl counters.

    Engines create one kernel each (via :func:`get_kernel`), so the
    counters are engine-local — no cross-thread sharing even when a
    query service runs several engines concurrently.  ``take_stats``
    snapshots and resets the counters; the engine calls it at run end to
    fold them into observer metrics.
    """

    __slots__ = ("impl", "scratch", "_threshold", "_calls", "_elements", "_dispatch")

    def __init__(self, impl: str = "auto", *, threshold: int | None = None) -> None:
        if impl not in KERNEL_IMPLS:
            raise ValueError(
                f"unknown kernel impl {impl!r}; options: {KERNEL_IMPLS}"
            )
        self.impl = impl
        self.scratch = ScratchPool()
        self._threshold = threshold
        self._calls = {name: 0 for name in CONCRETE_IMPLS}
        self._elements = {name: 0 for name in CONCRETE_IMPLS}
        self._dispatch = {name: 0 for name in CONCRETE_IMPLS}

    # ------------------------------------------------------------------
    @property
    def threshold(self) -> int:
        """Auto-dispatch crossover batch size (calibrated lazily)."""
        if self._threshold is None:
            from .calibrate import scatter_threshold

            self._threshold = scatter_threshold()
        return self._threshold

    def scatter_min(
        self, dist: np.ndarray, targets: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """Lower ``dist[targets]`` to ``values``; return sorted unique targets."""
        impl = self.impl
        if impl == "auto":
            impl = "sort_reduceat" if len(targets) >= self.threshold else "ufunc_at"
            self._dispatch[impl] += 1
        self._calls[impl] += 1
        self._elements[impl] += len(targets)
        return _IMPL_FNS[impl](dist, targets, values)

    # ------------------------------------------------------------------
    def take_stats(self) -> dict[str, dict[str, int]]:
        """Snapshot and reset the per-impl counters.

        Returns ``{impl: {"calls": c, "elements": e, "dispatched": d}}``
        for impls with activity; ``dispatched`` counts auto-mode
        decisions that picked the impl (0 when the impl was pinned).
        """
        out: dict[str, dict[str, int]] = {}
        for name in CONCRETE_IMPLS:
            if self._calls[name] or self._dispatch[name]:
                out[name] = {
                    "calls": self._calls[name],
                    "elements": self._elements[name],
                    "dispatched": self._dispatch[name],
                }
                self._calls[name] = 0
                self._elements[name] = 0
                self._dispatch[name] = 0
        return out


def get_kernel(spec: "str | Kernel | None" = None) -> Kernel:
    """Resolve a kernel spec to a fresh :class:`Kernel` instance.

    ``None`` resolves through the ``REPRO_KERNEL`` environment variable,
    defaulting to ``"auto"``; a string names an implementation; an
    existing :class:`Kernel` passes through unchanged (sharing its
    counters and scratch with the caller).
    """
    if isinstance(spec, Kernel):
        return spec
    if spec is None:
        spec = os.environ.get("REPRO_KERNEL") or "auto"
    return Kernel(spec)
