"""Relaxation kernels: the vectorized inner loops of the stepping engine.

The paper's wall-clock wins come from the data-parallel relaxation step;
this package isolates its two hot primitives behind a pluggable
interface so the same engine can run them with different low-level
strategies, all bit-identical:

* :func:`~repro.kernels.scatter.Kernel.scatter_min` — the batched
  ``write_min`` over relaxation proposals (``ufunc_at`` /
  ``sort_reduceat`` / ``auto``; see :mod:`repro.kernels.scatter`);
* :func:`~repro.kernels.relax.gather_relax` — the fused CSR gather that
  expands frontier elements into per-edge proposals over pooled scratch
  (:mod:`repro.kernels.relax`);
* :func:`~repro.kernels.calibrate.calibrate_delta` — the paper's
  Sec. 6.1 Δ-doubling procedure, fingerprint-cached
  (:mod:`repro.kernels.calibrate`).

Select an implementation with ``kernel="sort_reduceat"`` on any engine
entry point, the ``REPRO_KERNEL`` environment variable, or ``--kernel``
on the CLI.  See ``docs/perf.md`` ("Relaxation kernels").
"""

from .calibrate import calibrate_delta, calibrate_scatter, scatter_threshold
from .relax import gather_relax
from .scatter import KERNEL_IMPLS, Kernel, ScratchPool, get_kernel

__all__ = [
    "KERNEL_IMPLS",
    "Kernel",
    "ScratchPool",
    "get_kernel",
    "gather_relax",
    "calibrate_delta",
    "calibrate_scatter",
    "scatter_threshold",
]
