"""Measurement helpers: percentile query selection and statistics."""

from .percentiles import (
    doubling_rank_targets,
    reachable_by_distance,
    sample_query_pairs,
    target_at_percentile,
)
from .plotting import ascii_heatmap, ascii_line_chart, format_si
from .stats import geometric_mean, normalize_to_best, speedup

__all__ = [
    "reachable_by_distance",
    "target_at_percentile",
    "doubling_rank_targets",
    "sample_query_pairs",
    "ascii_line_chart",
    "ascii_heatmap",
    "format_si",
    "geometric_mean",
    "normalize_to_best",
    "speedup",
]
