"""Statistics helpers used by the experiment harness.

The paper reports geometric means throughout ("when taking the average
performance across multiple graphs, we always use the geometric mean")
and normalized heatmaps (Fig. 7); these helpers implement both.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

__all__ = ["geometric_mean", "normalize_to_best", "speedup"]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; NaN-free and overflow-safe."""
    logs = []
    for v in values:
        if v <= 0 or not math.isfinite(v):
            raise ValueError(f"geometric mean needs positive finite values, got {v}")
        logs.append(math.log(v))
    if not logs:
        raise ValueError("geometric mean of empty sequence")
    return math.exp(sum(logs) / len(logs))


def normalize_to_best(times: Mapping[str, float]) -> dict[str, float]:
    """Divide every entry by the minimum (Fig. 7's heatmap normalization)."""
    finite = [v for v in times.values() if math.isfinite(v)]
    if not finite:
        raise ValueError("no finite times to normalize")
    best = min(finite)
    if best <= 0:
        raise ValueError("times must be positive")
    return {k: (v / best if math.isfinite(v) else math.inf) for k, v in times.items()}


def speedup(baseline: float, ours: float) -> float:
    """How many times faster ``ours`` is than ``baseline``."""
    if ours <= 0:
        raise ValueError("time must be positive")
    return baseline / ours
