"""Distance-percentile query selection (Sec. 6 methodology).

The paper evaluates PPSP at controlled difficulty: "a query at the x-th
distance percentile means the target is the x% farthest vertex from the
source".  Given SSSP distances from a source, these helpers pick targets
at exact percentiles, and the doubling-rank series used by Fig. 4/8
(10th closest, 20th, 40th, ... up to the farthest reachable vertex).
"""

from __future__ import annotations

import numpy as np

from ..core.sssp import sssp_distances
from ..graphs.connectivity import largest_component

__all__ = [
    "reachable_by_distance",
    "target_at_percentile",
    "doubling_rank_targets",
    "sample_query_pairs",
]


def reachable_by_distance(graph, source: int) -> tuple[np.ndarray, np.ndarray]:
    """Vertices reachable from ``source`` sorted by true distance.

    Returns ``(vertices, distances)``, both sorted ascending by distance
    (the source itself, at distance 0, comes first).
    """
    dist = sssp_distances(graph, source)
    reach = np.flatnonzero(np.isfinite(dist))
    order = np.argsort(dist[reach], kind="stable")
    verts = reach[order]
    return verts, dist[verts]


def target_at_percentile(graph, source: int, percentile: float) -> int:
    """The vertex at the given distance percentile from ``source``.

    ``percentile`` in (0, 100]; 1 = among the 1% closest (an easy query),
    99 = nearly the farthest (a hard query), matching the paper's usage.
    """
    if not (0 < percentile <= 100):
        raise ValueError("percentile must be in (0, 100]")
    verts, _ = reachable_by_distance(graph, source)
    others = verts[1:]  # exclude the source itself
    if len(others) == 0:
        raise ValueError(f"source {source} has no reachable targets")
    rank = int(np.ceil(percentile / 100.0 * len(others))) - 1
    return int(others[np.clip(rank, 0, len(others) - 1)])


def doubling_rank_targets(graph, source: int, *, first_rank: int = 10) -> list[tuple[int, float]]:
    """Targets at ranks 10, 20, 40, ... plus the farthest vertex (Fig. 4).

    Returns ``(target, percentile)`` pairs; the percentile is the rank as
    a fraction of the reachable set, for plotting on the paper's axis.
    """
    verts, _ = reachable_by_distance(graph, source)
    others = verts[1:]
    count = len(others)
    if count == 0:
        raise ValueError(f"source {source} has no reachable targets")
    out: list[tuple[int, float]] = []
    rank = first_rank
    while rank < count:
        out.append((int(others[rank - 1]), 100.0 * rank / count))
        rank *= 2
    out.append((int(others[-1]), 100.0))
    return out


def sample_query_pairs(
    graph,
    percentile: float,
    *,
    num_pairs: int = 5,
    seed: int = 0,
) -> list[tuple[int, int]]:
    """Paper-style query sample: ``num_pairs`` sources from the LCC, each
    paired with its target at ``percentile``."""
    rng = np.random.default_rng(seed)
    lcc = largest_component(graph)
    sources = rng.choice(lcc, size=num_pairs, replace=len(lcc) < num_pairs)
    return [(int(s), target_at_percentile(graph, int(s), percentile)) for s in sources]
