"""Terminal plotting: ASCII line charts and shaded heatmaps.

The experiment modules print tables; these helpers render the same data
the way the paper's figures look — line series for time-vs-percentile
(Fig. 4) and speedup curves (Fig. 5), a shaded grid for the batch
heatmap (Fig. 7) — without any plotting dependency, so a terminal-only
reproduction still *sees* the shapes.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_line_chart", "ascii_heatmap", "format_si"]

_SERIES_MARKS = "ox+*#@%&"
_SHADES = " .:-=+*#%@"


def format_si(value: float) -> str:
    """Compact engineering formatting: 1234 -> '1.2k', 0.00123 -> '1.2m'."""
    if value == 0:
        return "0"
    if not math.isfinite(value):
        return "inf"
    mag = math.floor(math.log10(abs(value)))
    for low, suffix, div in ((9, "G", 1e9), (6, "M", 1e6), (3, "k", 1e3)):
        if mag >= low:
            return f"{value / div:.3g}{suffix}"
    if mag < -6:
        return f"{value * 1e9:.3g}n"
    if mag < -3:
        return f"{value * 1e6:.3g}u"
    if mag < 0:
        return f"{value * 1e3:.3g}m"
    return f"{value:.3g}"


def ascii_line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 16,
    title: str = "",
    log_y: bool = False,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series as an ASCII chart.

    Each series gets a mark character; the legend maps marks to names.
    ``log_y`` plots log10(y), the natural scale for running times that
    span orders of magnitude.
    """
    points = [(x, y) for pts in series.values() for x, y in pts if math.isfinite(y)]
    if not points:
        return f"{title}\n(no finite data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if log_y:
        ys = [math.log10(max(y, 1e-300)) for y in ys]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, pts) in enumerate(series.items()):
        mark = _SERIES_MARKS[idx % len(_SERIES_MARKS)]
        legend.append(f"{mark}={name}")
        for x, y in pts:
            if not math.isfinite(y):
                continue
            yy = math.log10(max(y, 1e-300)) if log_y else y
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((yy - y_lo) / y_span * (height - 1))
            grid[row][col] = mark

    top = format_si(10 ** y_hi if log_y else y_hi)
    bottom = format_si(10 ** y_lo if log_y else y_lo)
    margin = max(len(top), len(bottom), len(y_label)) + 1
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        if r == 0:
            label = top
        elif r == height - 1:
            label = bottom
        elif r == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(label.rjust(margin) + "|" + "".join(row))
    axis = " " * margin + "+" + "-" * width
    lines.append(axis)
    x_line = (
        " " * (margin + 1)
        + format_si(x_lo)
        + x_label.center(width - len(format_si(x_lo)) - len(format_si(x_hi)))
        + format_si(x_hi)
    )
    lines.append(x_line)
    lines.append(" " * (margin + 1) + "  ".join(legend))
    return "\n".join(lines)


def ascii_heatmap(
    rows: Sequence[str],
    cols: Sequence[str],
    values: Mapping[tuple[str, str], float],
    *,
    title: str = "",
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """Render a labelled grid with density shading (dark = large).

    ``values`` maps (row, col) to a number; missing cells are blank.
    Each cell also prints its value to 2 significant digits.
    """
    finite = [v for v in values.values() if math.isfinite(v)]
    if not finite:
        return f"{title}\n(no finite data)"
    v_lo = lo if lo is not None else min(finite)
    v_hi = hi if hi is not None else max(finite)
    span = (v_hi - v_lo) or 1.0

    cell_w = max(6, *(len(c) + 1 for c in cols))
    label_w = max(len(r) for r in rows) + 1
    lines = []
    if title:
        lines.append(title)
    lines.append(" " * label_w + "".join(c.rjust(cell_w) for c in cols))
    for r in rows:
        cells = []
        for c in cols:
            v = values.get((r, c))
            if v is None or not math.isfinite(v):
                cells.append("·".rjust(cell_w))
                continue
            shade_idx = round((v - v_lo) / span * (len(_SHADES) - 1))
            shade = _SHADES[min(max(shade_idx, 0), len(_SHADES) - 1)]
            cells.append(f"{shade}{v:.2f}".rjust(cell_w))
        lines.append(r.ljust(label_w) + "".join(cells))
    lines.append(f"(shading: '{_SHADES[0]}' = {v_lo:.2f} ... '{_SHADES[-1]}' = {v_hi:.2f})")
    return "\n".join(lines)
