"""Fig. 4 benchmarks: running time vs. distance percentile.

One benchmark per (method, doubling percentile bucket) on the road
representative — the series the paper plots.
"""

import pytest

from repro.analysis.percentiles import target_at_percentile
from repro.experiments.harness import run_single_query, tune_delta
from repro.graphs.connectivity import largest_component

PERCENTILE_POINTS = (1.0, 5.0, 25.0, 50.0, 75.0, 100.0)
METHODS = ("sssp", "et", "bids", "astar", "bidastar")


@pytest.mark.parametrize("percentile", PERCENTILE_POINTS, ids=lambda p: f"p{p:g}")
@pytest.mark.parametrize("method", METHODS)
def test_time_vs_percentile(benchmark, road, method, percentile):
    delta = tune_delta(road)
    s = int(largest_component(road)[0])
    t = target_at_percentile(road, s, percentile)
    timing = benchmark.pedantic(
        lambda: run_single_query(road, method, s, t, delta=delta),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    ref = run_single_query(road, "sssp", s, t, delta=delta).answer
    assert timing.answer == pytest.approx(ref, rel=1e-6)
