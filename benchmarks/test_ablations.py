"""Ablation benchmarks for the design choices of Sec. 5 / App. B.

Not a paper table, but the knobs the paper calls out: sparse-dense
frontier switching, bidirectional relaxation, Δ sensitivity, stepping
strategy choice, and the disconnected-query early exit.
"""

import numpy as np
import pytest

from repro.core.engine import run_policy
from repro.core.policies import BiDS, SsspPolicy
from repro.core.stepping import BellmanFord, DeltaStepping, DijkstraOrder, RhoStepping
from repro.experiments.harness import tune_delta
from repro.graphs import build_graph

from conftest import pair_at


class TestFrontierModes:
    @pytest.mark.parametrize("mode", ["auto", "sparse", "dense"])
    def test_sssp_frontier_mode(self, benchmark, road, mode):
        delta = tune_delta(road)
        res = benchmark.pedantic(
            lambda: run_policy(
                road, SsspPolicy(0), strategy=DeltaStepping(delta), frontier_mode=mode
            ),
            rounds=3,
            iterations=1,
        )
        assert np.isfinite(res.distances_from(0)).sum() > 0.9 * road.num_vertices


class TestBidirectionalRelaxation:
    @pytest.mark.parametrize("pull", [False, True], ids=["push-only", "push+pull"])
    def test_pull_relax(self, benchmark, knn, pull):
        delta = tune_delta(knn)
        res = benchmark.pedantic(
            lambda: run_policy(
                knn, SsspPolicy(0), strategy=DeltaStepping(delta), pull_relax=pull
            ),
            rounds=3,
            iterations=1,
        )
        assert res.steps > 0


class TestDeltaSensitivity:
    @pytest.mark.parametrize("factor", [0.25, 1.0, 4.0, 16.0], ids=lambda f: f"delta-x{f:g}")
    def test_delta_scaling(self, benchmark, road, factor):
        """The paper tunes Δ by doubling; this shows the cost surface."""
        delta = tune_delta(road) * factor
        s, t = pair_at(road, 50.0)
        res = benchmark.pedantic(
            lambda: run_policy(road, BiDS(s, t), strategy=DeltaStepping(delta)),
            rounds=3,
            iterations=1,
        )
        assert np.isfinite(res.answer)


class TestSteppingStrategies:
    @pytest.mark.parametrize(
        "make",
        [
            lambda d: DeltaStepping(d),
            lambda d: RhoStepping(64),
            lambda d: BellmanFord(),
            lambda d: DijkstraOrder(),
        ],
        ids=["delta", "rho", "bellman-ford", "dijkstra-order"],
    )
    def test_strategy(self, benchmark, road, make):
        delta = tune_delta(road)
        s, t = pair_at(road, 50.0)
        res = benchmark.pedantic(
            lambda: run_policy(road, BiDS(s, t), strategy=make(delta)),
            rounds=3,
            iterations=1,
        )
        assert np.isfinite(res.answer)


class TestDisconnectedEarlyExit:
    @pytest.fixture(scope="class")
    def split_graph(self):
        # A big component and a 30-vertex island.
        big = [(i, i + 1, 1.0) for i in range(2000)]
        island = [(2100 + i, 2100 + i + 1, 1.0) for i in range(30)]
        return build_graph(big + island, num_vertices=2200)

    @pytest.mark.parametrize("early_exit", [True, False], ids=["early-exit", "full-search"])
    def test_disconnected_query(self, benchmark, split_graph, early_exit):
        res = benchmark.pedantic(
            lambda: run_policy(
                split_graph, BiDS(0, 2110, disconnected_early_exit=early_exit)
            ),
            rounds=3,
            iterations=1,
        )
        assert np.isinf(res.answer)
