"""Fig. 7 benchmarks: batch PPSP strategies per query-graph pattern.

One benchmark per (pattern, strategy) on the road representative —
the cells of the paper's heatmap.  Wall-clock here tracks total work;
the Plain-vs-Plain* parallel-overlap distinction lives on the simulated
machine (``python -m repro.experiments.fig7``).
"""

import pytest

from repro.core.batch import BATCH_METHODS, solve_batch
from repro.core.query_graph import PATTERNS
from repro.core.stepping import DeltaStepping
from repro.experiments.harness import tune_delta


@pytest.mark.parametrize("pattern", list(PATTERNS))
@pytest.mark.parametrize("method", BATCH_METHODS)
def test_batch_pattern(benchmark, road, batch_vertices, pattern, method):
    delta = tune_delta(road)
    verts = batch_vertices(road)
    qg = PATTERNS[pattern](verts)

    res = benchmark.pedantic(
        lambda: solve_batch(
            road, qg, method=method, strategy_factory=lambda: DeltaStepping(delta)
        ),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    # Cross-check against Multi-BiDS once per cell.
    ref = solve_batch(road, qg, method="multi", strategy_factory=lambda: DeltaStepping(delta))
    for key, val in res.distances.items():
        assert val == pytest.approx(ref.distances[key], rel=1e-6)
