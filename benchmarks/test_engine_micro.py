"""Engine microbenchmarks: the primitives the hot loop is made of.

Regression guards for the vectorized kernels — a slowdown in any of
these inflates every experiment in the repo.
"""

import numpy as np
import pytest

from repro.core.frontier import Frontier
from repro.parallel.primitives import expand_ranges, write_min


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


class TestPrimitives:
    def test_expand_ranges_large(self, benchmark, rng):
        k = 20_000
        starts = rng.integers(0, 1_000_000, k)
        counts = rng.integers(0, 12, k)
        out = benchmark(lambda: expand_ranges(starts, counts))
        assert len(out) == counts.sum()

    def test_write_min_large(self, benchmark, rng):
        n = 200_000
        idx = rng.integers(0, n, 50_000)
        cand = rng.uniform(0, 1, 50_000)

        def run():
            vals = np.full(n, 0.5)
            return write_min(vals, idx, cand)

        ok = benchmark(run)
        assert ok.dtype == bool

    def test_relax_batch_kernel(self, benchmark, road):
        """The full gather-relax-scatter inner loop on a real frontier."""
        from repro.core.engine import PPSPEngine
        from repro.core.policies import SsspPolicy

        eng = PPSPEngine(road)
        n = road.num_vertices
        frontier = np.arange(0, n, 3, dtype=np.int64)

        def run():
            dist = np.full(n, np.inf)
            dist[frontier] = 1.0
            return eng._relax_batch(road, frontier, dist, n)

        changed, edges = benchmark(run)
        assert edges > 0


class TestFrontierOps:
    @pytest.mark.parametrize("mode", ["sparse", "dense"])
    def test_add_extract_cycle(self, benchmark, rng, mode):
        def run():
            f = Frontier(100_000, mode=mode)
            for _ in range(20):
                f.add(rng.integers(0, 100_000, 2_000))
                f.extract(lambda e: e.astype(float), 50_000.0)
            return len(f)

        size = benchmark.pedantic(run, rounds=3, iterations=1)
        assert size >= 0

    def test_auto_switching_overhead(self, benchmark, rng):
        def run():
            f = Frontier(50_000, mode="auto")
            # Grow past the dense threshold, shrink back to sparse.
            f.add(rng.integers(0, 50_000, 10_000))
            f.replace(rng.integers(0, 50_000, 100))
            f.add(rng.integers(0, 50_000, 10_000))
            return f.is_dense

        benchmark.pedantic(run, rounds=3, iterations=1)
