"""Fig. 6 benchmarks: A*/BiD-A* with and without heuristic memoization.

The ablation of Sec. 5: memoization removes repeated geometric-distance
computation.  Road uses spherical (expensive) heuristics, k-NN Euclidean
(cheap) — the paper's contrast.
"""

import pytest

from repro.experiments.harness import run_single_query, tune_delta

from conftest import pair_at

VARIANTS = [
    ("astar", False),
    ("astar", True),
    ("bidastar", False),
    ("bidastar", True),
]


@pytest.mark.parametrize("graph_fixture", ["road", "knn"])
@pytest.mark.parametrize(
    "method,memoize", VARIANTS, ids=[f"{m}{'+memo' if x else ''}" for m, x in VARIANTS]
)
def test_memoization(benchmark, request, graph_fixture, method, memoize):
    g = request.getfixturevalue(graph_fixture)
    delta = tune_delta(g)
    s, t = pair_at(g, 50.0)
    timing = benchmark.pedantic(
        lambda: run_single_query(g, method, s, t, delta=delta, memoize=memoize),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    ref = run_single_query(g, "et", s, t, delta=delta).answer
    assert timing.answer == pytest.approx(ref, rel=1e-6)


def test_memoization_reduces_heuristic_evaluations(road):
    """The mechanism itself, independent of wall clock: memoized runs
    evaluate the geometry strictly fewer times."""
    from repro.core.engine import run_policy
    from repro.core.policies import AStar
    from repro.core.stepping import DeltaStepping

    delta = tune_delta(road)
    s, t = pair_at(road, 50.0)
    memo = run_policy(road, AStar(s, t, memoize=True), strategy=DeltaStepping(delta))
    plain = run_policy(road, AStar(s, t, memoize=False), strategy=DeltaStepping(delta))
    assert memo.policy.heuristic.evaluated < plain.policy.heuristic.evaluated
