"""Table 4 benchmarks: every single-PPSP method at every percentile.

One benchmark per (method, percentile) on each representative graph —
the cells of the paper's Tab. 4.  A* rows only run on graphs with
coordinates, like the paper's "-" cells.
"""

import pytest

from repro.experiments.harness import HEURISTIC_METHODS, run_single_query, tune_delta

from conftest import pair_at

METHODS = ("sssp", "et", "bids", "astar", "bidastar", "gi-et", "gi-astar", "mbq-et", "mbq-astar")
PERCENTILES = (1.0, 50.0, 99.0)


@pytest.mark.parametrize("percentile", PERCENTILES, ids=lambda p: f"p{int(p)}")
@pytest.mark.parametrize("method", METHODS)
def test_single_ppsp(benchmark, rep_graph, method, percentile):
    if method in HEURISTIC_METHODS and not rep_graph.has_coords():
        pytest.skip("A* needs coordinates (paper's '-' cells)")
    delta = tune_delta(rep_graph)
    s, t = pair_at(rep_graph, percentile)

    timing = benchmark.pedantic(
        lambda: run_single_query(rep_graph, method, s, t, delta=delta),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    # Answers are audited: all methods agree with our SSSP on this pair.
    ref = run_single_query(rep_graph, "sssp", s, t, delta=delta).answer
    assert timing.answer == pytest.approx(ref, rel=1e-6)
