"""Bench-marked smoke run of the perf regression harness.

``make bench`` runs the real gate (``repro bench --scale small
--check``); this file keeps the harness itself inside the pytest
benchmark suite so ``pytest benchmarks/ -m bench`` exercises the full
snapshot/compare path on a tiny workload without touching the repo's
committed ``BENCH_*.json`` trajectory.
"""

from __future__ import annotations

import json

from repro.perf.regression import bench_command


def test_tiny_snapshot_and_gate(tmp_path):
    payload, rc = bench_command(scale="tiny", directory=tmp_path)
    assert rc == 0
    assert payload["gates"]["pass"] is True

    # Second run gates cleanly against the first.
    payload2, rc2 = bench_command(scale="tiny", directory=tmp_path, check=True)
    assert rc2 == 0
    assert payload2["comparison"]["status"] == "ok"

    emitted = sorted(p.name for p in tmp_path.glob("BENCH_*.json"))
    assert emitted == ["BENCH_2.json", "BENCH_3.json"]
    for name in emitted:
        json.loads((tmp_path / name).read_text())
