"""Table 3 benchmarks: graph construction and statistics per category.

Covers the suite substrate itself — generator cost and the
connectivity/diameter analysis that produces the Tab. 3 columns.
"""

import pytest

from repro.graphs import knn_graph, road_graph, social_graph, web_graph
from repro.graphs.connectivity import approximate_diameter, largest_component
from repro.graphs.knn import clustered_points


class TestGeneration:
    def test_generate_social(self, benchmark):
        g = benchmark(lambda: social_graph(2000, avg_degree=16, seed=1))
        assert g.num_vertices == 2000

    def test_generate_web(self, benchmark):
        g = benchmark(lambda: web_graph(2000, avg_degree=12, seed=2))
        assert g.num_vertices == 2000

    def test_generate_road(self, benchmark):
        g = benchmark(lambda: road_graph(45, 45, seed=3))
        assert g.num_vertices == 2025

    def test_generate_knn(self, benchmark):
        pts = clustered_points(2000, 2, seed=4)
        g = benchmark(lambda: knn_graph(pts, k=5))
        assert g.num_vertices == 2000


class TestStatistics:
    def test_largest_component(self, benchmark, road):
        lcc = benchmark(lambda: largest_component(road))
        assert len(lcc) > 0.9 * road.num_vertices

    def test_approximate_diameter(self, benchmark, road):
        d = benchmark.pedantic(
            lambda: approximate_diameter(road), rounds=3, iterations=1
        )
        assert d > 10

    def test_table3_row(self, benchmark, social):
        """The full per-graph statistics pipeline of Tab. 3."""

        def row():
            lcc = largest_component(social)
            return {
                "n": social.num_vertices,
                "m": social.num_edges // 2,
                "D": approximate_diameter(social, sweeps=2),
                "lcc": len(lcc) / social.num_vertices,
            }

        out = benchmark.pedantic(row, rounds=3, iterations=1)
        assert out["lcc"] > 0.5
