"""Fig. 5 benchmarks: the scalability pipeline on the simulated machine.

Benchmarks the execution that produces the work/depth profile, then
derives and sanity-checks the speedup curve the figure plots.
"""

import pytest

from repro.experiments.fig5 import PROCESSOR_COUNTS, collect
from repro.parallel.cost_model import speedup_curve
from repro.experiments.harness import run_single_query, tune_delta

from conftest import pair_at

METHODS = ("sssp", "et", "bids")


@pytest.mark.parametrize("method", METHODS)
def test_speedup_curve_pipeline(benchmark, rep_graph, method):
    delta = tune_delta(rep_graph)
    s, t = pair_at(rep_graph, 50.0)

    def run():
        timing = run_single_query(rep_graph, method, s, t, delta=delta)
        return speedup_curve(timing.meter, list(PROCESSOR_COUNTS))

    curve = benchmark.pedantic(run, rounds=3, iterations=1)
    assert curve[1] == pytest.approx(1.0)
    assert curve[192] >= curve[1]


def test_collect_whole_figure(benchmark, road):
    data = benchmark.pedantic(
        lambda: collect(road, methods=METHODS), rounds=2, iterations=1
    )
    assert set(data["curves"]) == set(METHODS)
