"""Extension benchmarks: ALT landmarks, PLL tradeoff, PnP baseline.

Not paper artifacts, but the extension features DESIGN.md lists —
benchmarked so regressions in the added subsystems are visible.
"""

import numpy as np
import pytest

from repro.baselines.pll import PrunedLandmarkLabeling
from repro.baselines.pnp import pnp_ppsp
from repro.core.engine import run_policy
from repro.core.policies import BiDAStar, BiDS
from repro.core.stepping import DeltaStepping
from repro.experiments.harness import run_single_query, tune_delta
from repro.heuristics.landmarks import LandmarkSet

from conftest import pair_at


class TestALT:
    @pytest.fixture(scope="class")
    def landmarks(self, social):
        return LandmarkSet(social, k=6)

    def test_preprocess(self, benchmark, social):
        ls = benchmark.pedantic(lambda: LandmarkSet(social, k=6), rounds=2, iterations=1)
        assert ls.k == 6

    def test_alt_bidastar_query(self, benchmark, social, landmarks):
        delta = tune_delta(social)
        s, t = pair_at(social, 50.0)

        def run():
            return run_policy(
                social,
                BiDAStar(
                    s, t,
                    heuristic_to_source=landmarks.heuristic_to(s),
                    heuristic_to_target=landmarks.heuristic_to(t),
                ),
                strategy=DeltaStepping(delta),
            )

        res = benchmark.pedantic(run, rounds=3, iterations=1)
        ref = run_single_query(social, "et", s, t, delta=delta).answer
        assert res.answer == pytest.approx(ref, rel=1e-6)

    def test_alt_reduces_work_vs_bids(self, social, landmarks):
        delta = tune_delta(social)
        s, t = pair_at(social, 50.0)
        alt = run_policy(
            social,
            BiDAStar(
                s, t,
                heuristic_to_source=landmarks.heuristic_to(s),
                heuristic_to_target=landmarks.heuristic_to(t),
            ),
            strategy=DeltaStepping(delta),
        )
        bids = run_policy(social, BiDS(s, t), strategy=DeltaStepping(delta))
        assert alt.relaxations < bids.relaxations


class TestPLL:
    def test_build_index(self, benchmark, knn):
        pll = benchmark.pedantic(
            lambda: PrunedLandmarkLabeling(knn), rounds=1, iterations=1
        )
        assert pll.exact

    def test_query_is_fast(self, benchmark, knn):
        pll = PrunedLandmarkLabeling(knn)
        s, t = pair_at(knn, 50.0)
        got = benchmark(lambda: pll.query(s, t))
        ref = run_single_query(knn, "bids", s, t, delta=tune_delta(knn)).answer
        assert got == pytest.approx(ref, rel=1e-6)


class TestPnP:
    def test_pnp_query(self, benchmark, road):
        s, t = pair_at(road, 50.0)
        delta = tune_delta(road)
        got = benchmark.pedantic(
            lambda: pnp_ppsp(road, s, t, strategy=DeltaStepping(delta)),
            rounds=3,
            iterations=1,
        )
        ref = run_single_query(road, "bids", s, t, delta=delta).answer
        assert got == pytest.approx(ref, rel=1e-6)


class TestChunkedBatch:
    @pytest.mark.parametrize("max_sources", [None, 4], ids=["unchunked", "chunk4"])
    def test_clique_batch(self, benchmark, road, batch_vertices, max_sources):
        from repro.core.batch import solve_batch
        from repro.core.query_graph import QueryGraph

        delta = tune_delta(road)
        qg = QueryGraph.clique(batch_vertices(road))
        res = benchmark.pedantic(
            lambda: solve_batch(
                road, qg, method="multi", max_sources=max_sources,
                strategy_factory=lambda: DeltaStepping(delta),
            ),
            rounds=3,
            iterations=1,
        )
        assert len(res.distances) == qg.num_edges
