"""Shared benchmark fixtures.

Benchmarks run the same code paths as the experiment modules at tiny
scale so ``pytest benchmarks/ --benchmark-only`` regenerates a
representative row of every paper table/figure in seconds.  The full
tables come from ``python -m repro.experiments.<name> --scale small``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.percentiles import sample_query_pairs, target_at_percentile
from repro.experiments.harness import tune_delta
from repro.experiments.suite import build_graph
from repro.graphs.connectivity import largest_component

#: one representative per category (the paper's Fig. 4 selection).
REPRESENTATIVES = ("OK", "IT", "NA", "GL5")


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ carries the ``bench`` marker."""
    for item in items:
        item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session", params=REPRESENTATIVES)
def rep_graph(request):
    return build_graph(request.param, "tiny")


@pytest.fixture(scope="session")
def road():
    return build_graph("NA", "tiny")


@pytest.fixture(scope="session")
def social():
    return build_graph("OK", "tiny")


@pytest.fixture(scope="session")
def knn():
    return build_graph("GL5", "tiny")


def pair_at(graph, percentile: float, seed: int = 42) -> tuple[int, int]:
    return sample_query_pairs(graph, percentile, num_pairs=1, seed=seed)[0]


@pytest.fixture(scope="session")
def delta_of():
    return tune_delta


@pytest.fixture(scope="session")
def batch_vertices():
    def make(graph, k: int = 6, seed: int = 13):
        rng = np.random.default_rng(seed)
        lcc = largest_component(graph)
        return rng.choice(lcc, size=k, replace=False).tolist()

    return make
